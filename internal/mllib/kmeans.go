package mllib

import (
	"math"

	"blaze/internal/dataflow"
	"blaze/internal/datagen"
)

// KMeansConfig parameterizes the KMeans workload (§7.1: HiBench uniform
// data; the paper notes the uniform distribution yields small partition
// skew, limiting auto-caching's benefit there).
type KMeansConfig struct {
	Data     datagen.ClusterSpec
	Parts    int
	MaxIters int
	// Epsilon is the centroid-movement convergence threshold; negative
	// disables the convergence check so the full iteration budget runs
	// (HiBench-style fixed iterations).
	Epsilon  float64
	Annotate bool
}

func (c KMeansConfig) withDefaults() KMeansConfig {
	if c.Parts == 0 {
		c.Parts = 8
	}
	if c.MaxIters == 0 {
		c.MaxIters = 10
	}
	if c.Epsilon == 0 {
		c.Epsilon = 1e-3
	}
	return c
}

// sumCount accumulates a cluster's assigned points.
type sumCount struct {
	Sum []float64
	N   float64
}

// SizeBytes implements storage.Sized.
func (s sumCount) SizeBytes() int64 { return 40 + 8*int64(len(s.Sum)) }

// clusterSource builds the partitioned points dataset.
func clusterSource(ctx *dataflow.Context, dsName string, spec datagen.ClusterSpec, parts int) *dataflow.Dataset {
	return ctx.Source(dsName, parts, func(part int) []dataflow.Record {
		return memoized("cluster", spec, parts, part, func() []dataflow.Record {
			var out []dataflow.Record
			for i := int64(part); i < int64(spec.N); i += int64(parts) {
				x, _ := spec.Point(i)
				out = append(out, dataflow.Record{Key: i, Value: Vector{V: x}})
			}
			return out
		})
	})
}

// KMeans runs Lloyd's algorithm, one job per iteration, and returns the
// final centroids and within-cluster sum of squares.
func KMeans(ctx *dataflow.Context, cfg KMeansConfig) ([][]float64, float64) {
	cfg = cfg.withDefaults()
	spec := cfg.Data
	points := clusterSource(ctx, "km-points@0", spec, cfg.Parts)
	if cfg.Annotate {
		points.Cache()
	}
	// Initial centroids: the first K points (MLlib uses sampling; the
	// first points of a uniform dataset serve the same role
	// deterministically).
	centroids := ctx.Source("km-cent@0", 1, func(int) []dataflow.Record {
		out := make([]dataflow.Record, spec.K)
		for c := 0; c < spec.K; c++ {
			x, _ := spec.Point(int64(c))
			out[c] = dataflow.Record{Key: int64(c), Value: Vector{V: x}}
		}
		return out
	})

	assignStats := func(it int, cents *dataflow.Dataset) *dataflow.Dataset {
		return dataflow.Barrier(name("km-stats", it), dataflow.OpHeavy, points, cents,
			func(_ int, ps, cs []dataflow.Record) []dataflow.Record {
				centers := make([][]float64, len(cs))
				for i, c := range cs {
					centers[c.Key] = c.Value.(Vector).V
					_ = i
				}
				acc := make(map[int64]*sumCount)
				for _, p := range ps {
					x := p.Value.(Vector).V
					best, bestD := 0, math.Inf(1)
					for c, ctr := range centers {
						if ctr == nil {
							continue
						}
						d := 0.0
						for j := range x {
							diff := x[j] - ctr[j]
							d += diff * diff
						}
						if d < bestD {
							best, bestD = c, d
						}
					}
					sc := acc[int64(best)]
					if sc == nil {
						sc = &sumCount{Sum: make([]float64, len(x))}
						acc[int64(best)] = sc
					}
					for j := range x {
						sc.Sum[j] += x[j]
					}
					sc.N++
				}
				var out []dataflow.Record
				for c := int64(0); c < int64(spec.K); c++ {
					if sc := acc[c]; sc != nil {
						out = append(out, dataflow.Record{Key: c, Value: *sc})
					}
				}
				return out
			}).WithBatchKernel(statsKernel(spec.K))
	}

	prevCenters := make([][]float64, 0, spec.K)
	var prevStats, prevCentDS *dataflow.Dataset
	var centers [][]float64
	for it := 1; it <= cfg.MaxIters; it++ {
		stats := assignStats(it, centroids)
		agg := stats.ReduceByKey(name("km-agg", it), 1, func(a, b any) any {
			av, bv := a.(sumCount), b.(sumCount)
			sum := make([]float64, len(av.Sum))
			for j := range sum {
				sum[j] = av.Sum[j] + bv.Sum[j]
			}
			return sumCount{Sum: sum, N: av.N + bv.N}
		})
		newCent := agg.Map(name("km-cent", it), func(r dataflow.Record) dataflow.Record {
			sc := r.Value.(sumCount)
			v := make([]float64, len(sc.Sum))
			for j := range v {
				v[j] = sc.Sum[j] / math.Max(sc.N, 1)
			}
			return dataflow.Record{Key: r.Key, Value: Vector{V: v}}
		})
		if cfg.Annotate {
			newCent.Cache()
		}

		centers = make([][]float64, spec.K)
		for _, part := range newCent.Collect() { // the iteration's job
			for _, r := range part {
				centers[r.Key] = r.Value.(Vector).V
			}
		}

		if prevStats != nil {
			prevStats.Release()
		}
		if prevCentDS != nil {
			prevCentDS.Release()
		}
		prevStats, prevCentDS = stats, centroids
		centroids = newCent

		// Convergence: maximum centroid movement below epsilon.
		if cfg.Epsilon >= 0 && len(prevCenters) == spec.K {
			maxMove := 0.0
			for c := range centers {
				if centers[c] == nil || prevCenters[c] == nil {
					continue
				}
				d := 0.0
				for j := range centers[c] {
					diff := centers[c][j] - prevCenters[c][j]
					d += diff * diff
				}
				if m := math.Sqrt(d); m > maxMove {
					maxMove = m
				}
			}
			if maxMove < cfg.Epsilon {
				break
			}
		}
		prevCenters = centers
	}

	// Final within-cluster sum of squares.
	wcss := dataflow.Barrier("km-wcss@0", dataflow.OpMedium, points, centroids,
		func(_ int, ps, cs []dataflow.Record) []dataflow.Record {
			centers := make([][]float64, spec.K)
			for _, c := range cs {
				centers[c.Key] = c.Value.(Vector).V
			}
			total := 0.0
			for _, p := range ps {
				x := p.Value.(Vector).V
				best := math.Inf(1)
				for _, ctr := range centers {
					if ctr == nil {
						continue
					}
					d := 0.0
					for j := range x {
						diff := x[j] - ctr[j]
						d += diff * diff
					}
					if d < best {
						best = d
					}
				}
				total += best
			}
			return []dataflow.Record{{Key: 0, Value: total}}
		}).WithBatchKernel(wcssKernel(spec.K)).ReduceByKeyF64("km-wcss-agg@0", 1, func(a, b float64) float64 {
		return a + b
	})
	var total float64
	for _, part := range wcss.Collect() {
		for _, r := range part {
			total = r.Value.(float64)
		}
	}
	return centers, total
}

// KMeansWorkload wraps KMeans as a profile-compatible workload.
func KMeansWorkload(cfg KMeansConfig) func(ctx *dataflow.Context, scale float64) {
	return func(ctx *dataflow.Context, scale float64) {
		c := cfg.withDefaults()
		c.Data.N = scaledN(c.Data.N, scale)
		KMeans(ctx, c)
	}
}
