package mllib

import "blaze/internal/storage"

// init registers the workload value types with the gob codec so the
// engine's VerifyCodec mode can round-trip real partitions.
func init() {
	storage.RegisterValueType(LabeledPoint{})
	storage.RegisterValueType(Vector{})
	storage.RegisterValueType(gradStats{})
	storage.RegisterValueType(sumCount{})
	storage.RegisterValueType(binStats{})
	storage.RegisterValueType(GBTModel{})
	storage.RegisterValueType([]float64{})
}
