package mllib

// Columnar payload columns and batch kernels for the ML workloads. Each
// kernel is the vectorized twin of a row compute function in kmeans.go /
// stream.go and must stay observationally identical to it: same records,
// same order, bit-equal floats (identical accumulation order). Kernels
// type-assert their input columns and return nil to decline, dropping
// the partition back onto the row escape hatch.

import (
	"math"

	"blaze/internal/dataflow"
)

func init() {
	dataflow.RegisterColumnType(Vector{}, func(capHint int) dataflow.Column {
		return NewVectorColumn(capHint)
	})
	dataflow.RegisterColumnType(sumCount{}, func(capHint int) dataflow.Column {
		return NewSumCountColumn(capHint)
	})
}

// VectorColumn stores Vector values as a flattened struct-of-arrays:
// element i spans Flat[Off[i]:Off[i+1]].
type VectorColumn struct {
	Off  []int32
	Flat []float64
}

// NewVectorColumn returns an empty vector column with pooled storage.
func NewVectorColumn(capHint int) *VectorColumn {
	c := &VectorColumn{Off: dataflow.GetI32Slice(capHint + 1), Flat: dataflow.GetF64Slice(capHint)}
	c.Off = append(c.Off, 0)
	return c
}

func (c *VectorColumn) Len() int { return len(c.Off) - 1 }

func (c *VectorColumn) Value(i int) any {
	lo, hi := c.Off[i], c.Off[i+1]
	var v []float64
	if lo != hi {
		v = make([]float64, hi-lo)
		copy(v, c.Flat[lo:hi])
	}
	return Vector{V: v}
}

func (c *VectorColumn) AppendValue(v any) bool {
	x, ok := v.(Vector)
	if !ok {
		return false
	}
	c.Flat = append(c.Flat, x.V...)
	c.Off = append(c.Off, int32(len(c.Flat)))
	return true
}

func (c *VectorColumn) AppendFrom(src dataflow.Column, i int) bool {
	s, ok := src.(*VectorColumn)
	if !ok {
		return false
	}
	c.Flat = append(c.Flat, s.Flat[s.Off[i]:s.Off[i+1]]...)
	c.Off = append(c.Off, int32(len(c.Flat)))
	return true
}

func (c *VectorColumn) SizeAt(i int) int64 { return 24 + 8*int64(c.Off[i+1]-c.Off[i]) }

func (c *VectorColumn) SizeBytes() int64 {
	return 24*int64(c.Len()) + 8*int64(len(c.Flat))
}

func (c *VectorColumn) NewEmpty(capHint int) dataflow.Column { return NewVectorColumn(capHint) }

func (c *VectorColumn) Release() {
	dataflow.PutI32Slice(c.Off)
	dataflow.PutF64Slice(c.Flat)
	c.Off, c.Flat = nil, nil
}

// SumCountColumn stores sumCount values: a dense count column plus the
// flattened per-cluster sums.
type SumCountColumn struct {
	N    []float64
	Off  []int32
	Flat []float64
}

// NewSumCountColumn returns an empty statistics column with pooled
// storage.
func NewSumCountColumn(capHint int) *SumCountColumn {
	c := &SumCountColumn{
		N:    dataflow.GetF64Slice(capHint),
		Off:  dataflow.GetI32Slice(capHint + 1),
		Flat: dataflow.GetF64Slice(capHint),
	}
	c.Off = append(c.Off, 0)
	return c
}

func (c *SumCountColumn) Len() int { return len(c.N) }

func (c *SumCountColumn) Value(i int) any {
	lo, hi := c.Off[i], c.Off[i+1]
	var sum []float64
	if lo != hi {
		sum = make([]float64, hi-lo)
		copy(sum, c.Flat[lo:hi])
	}
	return sumCount{Sum: sum, N: c.N[i]}
}

func (c *SumCountColumn) AppendValue(v any) bool {
	x, ok := v.(sumCount)
	if !ok {
		return false
	}
	c.N = append(c.N, x.N)
	c.Flat = append(c.Flat, x.Sum...)
	c.Off = append(c.Off, int32(len(c.Flat)))
	return true
}

func (c *SumCountColumn) AppendFrom(src dataflow.Column, i int) bool {
	s, ok := src.(*SumCountColumn)
	if !ok {
		return false
	}
	c.N = append(c.N, s.N[i])
	c.Flat = append(c.Flat, s.Flat[s.Off[i]:s.Off[i+1]]...)
	c.Off = append(c.Off, int32(len(c.Flat)))
	return true
}

func (c *SumCountColumn) SizeAt(i int) int64 { return 40 + 8*int64(c.Off[i+1]-c.Off[i]) }

func (c *SumCountColumn) SizeBytes() int64 {
	return 40*int64(c.Len()) + 8*int64(len(c.Flat))
}

func (c *SumCountColumn) NewEmpty(capHint int) dataflow.Column { return NewSumCountColumn(capHint) }

func (c *SumCountColumn) Release() {
	dataflow.PutF64Slice(c.N)
	dataflow.PutI32Slice(c.Off)
	dataflow.PutF64Slice(c.Flat)
	c.N, c.Off, c.Flat = nil, nil, nil
}

// --- k-means kernels ---------------------------------------------------

// statsKernel vectorizes the assignment Barrier: every point joins its
// nearest centroid's running sum, accumulated in point order into dense
// per-cluster arrays — the same accumulation order as the row closure's
// map of *sumCount, so the statistics are bit-equal. Emits clusters
// 0..k-1 that received points, like the row closure's ordered sweep.
func statsKernel(k int) dataflow.BatchFunc {
	return func(_ int, ins []*dataflow.Batch) *dataflow.Batch {
		ps, cs := ins[0], ins[1]
		if ps.Len() == 0 {
			return dataflow.NewBatch(0) // row closure appends nothing: nil
		}
		pc, okP := ps.Col.(*VectorColumn)
		ctrs, okC := centerSlices(cs, k)
		if !okP || !okC {
			return nil
		}
		dim := int(pc.Off[1] - pc.Off[0])
		accSum := make([]float64, k*dim)
		accN := make([]float64, k)
		switch dim {
		// Low-dimensional points get unrolled distance loops over dense
		// center coordinates. The float association matches the generic
		// sweep exactly (d0*d0 + d1*d1 + ... equals the sequential
		// d += diff*diff because the running sum starts at +0), so the
		// fast paths stay bit-identical to the row closure.
		case 2:
			if !statsDim2(pc, ps.Len(), ctrs, accSum, accN) {
				return nil
			}
		case 4:
			if !statsDim4(pc, ps.Len(), ctrs, accSum, accN) {
				return nil
			}
		default:
			for i := 0; i < ps.Len(); i++ {
				lo, hi := pc.Off[i], pc.Off[i+1]
				if int(hi-lo) != dim {
					return nil // ragged points: let the row path handle it
				}
				x := pc.Flat[lo:hi]
				best, bestD := 0, math.Inf(1)
				for c, ctr := range ctrs {
					if ctr == nil {
						continue
					}
					d := 0.0
					for j := range x {
						diff := x[j] - ctr[j]
						d += diff * diff
					}
					if d < bestD {
						best, bestD = c, d
					}
				}
				sum := accSum[best*dim : best*dim+dim]
				for j := range x {
					sum[j] += x[j]
				}
				accN[best]++
			}
		}
		out := dataflow.NewBatch(k)
		oc := NewSumCountColumn(k)
		out.Col = oc
		for c := 0; c < k; c++ {
			if accN[c] > 0 {
				out.Keys = append(out.Keys, int64(c))
				oc.N = append(oc.N, accN[c])
				oc.Flat = append(oc.Flat, accSum[c*dim:c*dim+dim]...)
				oc.Off = append(oc.Off, int32(len(oc.Flat)))
			}
		}
		out.NonNil = len(out.Keys) > 0
		return out
	}
}

// statsDim2 is the unrolled assignment sweep for 2-D points. Reports
// false on a ragged point so the kernel declines the whole partition,
// exactly like the generic sweep.
func statsDim2(pc *VectorColumn, n int, ctrs [][]float64, accSum, accN []float64) bool {
	// Compact the present centers into dense parallel arrays. Scanning
	// them in ascending original order with strict less-than keeps the
	// winner identical to the generic nil-skipping sweep.
	var c0, c1 []float64
	var orig []int
	for c, ctr := range ctrs {
		if ctr != nil {
			c0 = append(c0, ctr[0])
			c1 = append(c1, ctr[1])
			orig = append(orig, c)
		}
	}
	flat := pc.Flat
	for i := 0; i < n; i++ {
		base := pc.Off[i]
		if pc.Off[i+1]-base != 2 {
			return false
		}
		x0, x1 := flat[base], flat[base+1]
		best, bestD := 0, math.Inf(1)
		for c := range c0 {
			d0 := x0 - c0[c]
			d1 := x1 - c1[c]
			d := d0*d0 + d1*d1
			if d < bestD {
				best, bestD = orig[c], d
			}
		}
		accSum[best*2] += x0
		accSum[best*2+1] += x1
		accN[best]++
	}
	return true
}

// statsDim4 is the unrolled assignment sweep for 4-D points.
func statsDim4(pc *VectorColumn, n int, ctrs [][]float64, accSum, accN []float64) bool {
	var cd []float64
	var orig []int
	for c, ctr := range ctrs {
		if ctr != nil {
			cd = append(cd, ctr[0], ctr[1], ctr[2], ctr[3])
			orig = append(orig, c)
		}
	}
	flat := pc.Flat
	for i := 0; i < n; i++ {
		base := pc.Off[i]
		if pc.Off[i+1]-base != 4 {
			return false
		}
		x0, x1, x2, x3 := flat[base], flat[base+1], flat[base+2], flat[base+3]
		best, bestD := 0, math.Inf(1)
		for c := range orig {
			d0 := x0 - cd[c*4]
			d1 := x1 - cd[c*4+1]
			d2 := x2 - cd[c*4+2]
			d3 := x3 - cd[c*4+3]
			d := d0*d0 + d1*d1 + d2*d2 + d3*d3
			if d < bestD {
				best, bestD = orig[c], d
			}
		}
		accSum[best*4] += x0
		accSum[best*4+1] += x1
		accSum[best*4+2] += x2
		accSum[best*4+3] += x3
		accN[best]++
	}
	return true
}

// wcssKernel vectorizes the within-cluster-sum-of-squares Barrier: one
// float64 record per partition holding the partial total.
func wcssKernel(k int) dataflow.BatchFunc {
	return func(_ int, ins []*dataflow.Batch) *dataflow.Batch {
		ps, cs := ins[0], ins[1]
		var pc *VectorColumn
		if ps.Len() > 0 {
			var ok bool
			pc, ok = ps.Col.(*VectorColumn)
			if !ok {
				return nil
			}
		}
		ctrs, ok := centerSlices(cs, k)
		if !ok {
			return nil
		}
		total := 0.0
		for i := 0; i < ps.Len(); i++ {
			x := pc.Flat[pc.Off[i]:pc.Off[i+1]]
			best := math.Inf(1)
			for _, ctr := range ctrs {
				if ctr == nil {
					continue
				}
				d := 0.0
				for j := range x {
					diff := x[j] - ctr[j]
					d += diff * diff
				}
				if d < best {
					best = d
				}
			}
			total += best
		}
		out := dataflow.NewBatch(1)
		out.NonNil = true // row closure returns a one-record slice
		oc := dataflow.NewF64Column(1)
		out.Col = oc
		out.Keys = append(out.Keys, 0)
		oc.Vals = append(oc.Vals, total)
		return out
	}
}

// centerSlices indexes a broadcast centroid batch into a dense array of
// k coordinate slices (nil for absent clusters), mirroring the row
// closures' centers table. It reports false when the batch is not a
// vector column or a key falls outside [0, k) — cases the kernels
// decline rather than diverge from the row path on.
func centerSlices(cs *dataflow.Batch, k int) ([][]float64, bool) {
	ctrs := make([][]float64, k)
	if cs.Len() == 0 {
		return ctrs, true
	}
	cc, ok := cs.Col.(*VectorColumn)
	if !ok {
		return nil, false
	}
	for i, key := range cs.Keys {
		if key < 0 || key >= int64(k) {
			return nil, false
		}
		ctrs[key] = cc.Flat[cc.Off[i]:cc.Off[i+1]]
	}
	return ctrs, true
}
