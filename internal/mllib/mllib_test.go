package mllib

import (
	"math"
	"testing"

	"blaze/internal/dataflow"
	"blaze/internal/datagen"
)

func localCtx() *dataflow.Context {
	ctx := dataflow.NewContext()
	dataflow.NewLocalRunner(ctx)
	return ctx
}

func TestLogisticRegressionLearns(t *testing.T) {
	spec := datagen.PointsSpec{Seed: 1, N: 1500, Dim: 8, Noise: 0.02}
	w, acc := LogisticRegression(localCtx(), LogisticRegressionConfig{
		Points: spec, Parts: 4, Iters: 25, LearnRate: 1.0,
	})
	if len(w) != 8 {
		t.Fatalf("weights dim = %d", len(w))
	}
	if acc < 0.85 {
		t.Fatalf("training accuracy %v too low; LR failed to learn", acc)
	}
}

func TestLogisticRegressionBeatsChance(t *testing.T) {
	spec := datagen.PointsSpec{Seed: 2, N: 600, Dim: 5, Noise: 0.1}
	_, acc1 := LogisticRegression(localCtx(), LogisticRegressionConfig{Points: spec, Parts: 2, Iters: 1})
	_, acc20 := LogisticRegression(localCtx(), LogisticRegressionConfig{Points: spec, Parts: 2, Iters: 20})
	if acc20 <= acc1-0.05 {
		t.Fatalf("more iterations should not hurt: iter1=%v iter20=%v", acc1, acc20)
	}
	if acc20 < 0.75 {
		t.Fatalf("accuracy %v barely beats chance", acc20)
	}
}

func TestKMeansRecoversClusters(t *testing.T) {
	spec := datagen.ClusterSpec{Seed: 3, N: 1200, Dim: 4, K: 4, Spread: 1.0}
	centers, wcss := KMeans(localCtx(), KMeansConfig{Data: spec, Parts: 4, MaxIters: 15})
	if len(centers) != 4 {
		t.Fatalf("centers = %d, want 4", len(centers))
	}
	// Every recovered center should be near a generating center.
	for c, ctr := range centers {
		if ctr == nil {
			t.Fatalf("center %d empty", c)
		}
		best := math.Inf(1)
		for g := 0; g < 4; g++ {
			gc := spec.Center(g)
			d := 0.0
			for j := range ctr {
				diff := ctr[j] - gc[j]
				d += diff * diff
			}
			if s := math.Sqrt(d); s < best {
				best = s
			}
		}
		if best > 5 {
			t.Fatalf("center %d is %v away from every generating center", c, best)
		}
	}
	// WCSS for well-separated unit-spread clusters ≈ N*dim*spread².
	if wcss > float64(spec.N)*float64(spec.Dim)*4 {
		t.Fatalf("WCSS %v too large", wcss)
	}
}

func TestKMeansConverges(t *testing.T) {
	spec := datagen.ClusterSpec{Seed: 5, N: 400, Dim: 3, K: 3, Spread: 0.5}
	c1, w1 := KMeans(localCtx(), KMeansConfig{Data: spec, Parts: 2, MaxIters: 30, Epsilon: 1e-6})
	c2, w2 := KMeans(localCtx(), KMeansConfig{Data: spec, Parts: 2, MaxIters: 30, Epsilon: 1e-6})
	if w1 != w2 {
		t.Fatalf("non-deterministic WCSS: %v vs %v", w1, w2)
	}
	for i := range c1 {
		for j := range c1[i] {
			if c1[i][j] != c2[i][j] {
				t.Fatal("non-deterministic centers")
			}
		}
	}
}

func TestGBTReducesMSE(t *testing.T) {
	spec := datagen.PointsSpec{Seed: 7, N: 1000, Dim: 6, Noise: 0.05}
	_, mse1 := GBT(localCtx(), GBTConfig{Points: spec, Parts: 4, Trees: 1, Depth: 3})
	_, mse8 := GBT(localCtx(), GBTConfig{Points: spec, Parts: 4, Trees: 8, Depth: 3})
	if mse8 >= mse1 {
		t.Fatalf("more trees must reduce training MSE: 1 tree %v, 8 trees %v", mse1, mse8)
	}
	// Labels are 0/1; base prediction 0.5 gives MSE 0.25. The ensemble
	// must do clearly better.
	if mse8 > 0.18 {
		t.Fatalf("GBT MSE %v barely beats the constant predictor", mse8)
	}
}

func TestGBTModelGrows(t *testing.T) {
	spec := datagen.PointsSpec{Seed: 7, N: 500, Dim: 4, Noise: 0.05}
	m2, _ := GBT(localCtx(), GBTConfig{Points: spec, Parts: 2, Trees: 2, Depth: 3})
	m6, _ := GBT(localCtx(), GBTConfig{Points: spec, Parts: 2, Trees: 6, Depth: 3})
	if m6.SizeBytes() <= m2.SizeBytes() {
		t.Fatalf("model size must grow with trees: %d vs %d", m2.SizeBytes(), m6.SizeBytes())
	}
	if len(m6.TreeSplits) != 6 {
		t.Fatalf("trees = %d, want 6", len(m6.TreeSplits))
	}
}

func TestGBTPredictTraversal(t *testing.T) {
	m := GBTModel{
		TreeSplits: []map[int]split{{1: {Feature: 0, Threshold: 0}}},
		TreeLeaves: []map[int]float64{{2: -1, 3: 1}},
		LearnRate:  1,
		Base:       0,
	}
	if got := m.Predict([]float64{-5}); got != -1 {
		t.Fatalf("left branch = %v, want -1", got)
	}
	if got := m.Predict([]float64{5}); got != 1 {
		t.Fatalf("right branch = %v, want 1", got)
	}
}

func TestWorkloadWrappersRun(t *testing.T) {
	// Each wrapper must run end-to-end at tiny profiling scale.
	wrappers := []func(*dataflow.Context, float64){
		LogisticRegressionWorkload(LogisticRegressionConfig{Points: datagen.PointsSpec{Seed: 1, N: 400, Dim: 4}, Parts: 2, Iters: 3}),
		KMeansWorkload(KMeansConfig{Data: datagen.ClusterSpec{Seed: 1, N: 400, Dim: 3, K: 3, Spread: 1}, Parts: 2, MaxIters: 3}),
		GBTWorkload(GBTConfig{Points: datagen.PointsSpec{Seed: 1, N: 400, Dim: 4}, Parts: 2, Trees: 2, Depth: 2}),
	}
	for i, w := range wrappers {
		ctx := localCtx()
		w(ctx, 0.1)
		if len(ctx.Datasets()) == 0 {
			t.Fatalf("wrapper %d created no datasets", i)
		}
	}
}

func TestVectorAndPointSizes(t *testing.T) {
	if (Vector{V: make([]float64, 4)}).SizeBytes() != 24+32 {
		t.Fatal("Vector size wrong")
	}
	if (LabeledPoint{X: make([]float64, 4)}).SizeBytes() != 32+32 {
		t.Fatal("LabeledPoint size wrong")
	}
	if (sumCount{Sum: make([]float64, 2)}).SizeBytes() != 40+16 {
		t.Fatal("sumCount size wrong")
	}
}
