package mllib

import (
	"math"
	"reflect"
	"testing"

	"blaze/internal/dataflow"
)

// mkPoints builds n deterministic dim-dimensional points with values
// engineered to produce near-ties so the comparison covers the strict
// less-than tie-breaking of the assignment sweep.
func mkPoints(n, dim int) []dataflow.Record {
	recs := make([]dataflow.Record, n)
	for i := range recs {
		v := make([]float64, dim)
		for j := range v {
			v[j] = math.Sin(float64(i*dim+j)) * float64(1+j)
		}
		recs[i] = dataflow.Record{Key: int64(i), Value: Vector{V: v}}
	}
	return recs
}

func mkCenters(k, dim int, skip map[int]bool) []dataflow.Record {
	var recs []dataflow.Record
	for c := 0; c < k; c++ {
		if skip[c] {
			continue
		}
		v := make([]float64, dim)
		for j := range v {
			v[j] = math.Cos(float64(c*dim+j)) * float64(1+j)
		}
		recs = append(recs, dataflow.Record{Key: int64(c), Value: Vector{V: v}})
	}
	return recs
}

// TestStatsKernelMatchesRowClosure pins the core kernel contract at
// every dimension path: the unrolled dim-2 and dim-4 sweeps and the
// generic sweep must produce bit-identical statistics to the row
// closure (same clusters, same order, bit-equal sums and counts).
func TestStatsKernelMatchesRowClosure(t *testing.T) {
	for _, dim := range []int{2, 4, 8} {
		for _, k := range []int{1, 3, 8} {
			ps := mkPoints(257, dim)
			cs := mkCenters(k, dim, nil)
			row := BenchStatsRow(ps, cs, k)
			out := statsKernel(k)(0, []*dataflow.Batch{dataflow.FromRecords(ps), dataflow.FromRecords(cs)})
			if out == nil {
				t.Fatalf("dim=%d k=%d: kernel declined typed input", dim, k)
			}
			if got := out.Records(); !reflect.DeepEqual(got, row) {
				t.Fatalf("dim=%d k=%d: kernel diverges from row closure\nrow: %+v\nkernel: %+v", dim, k, row, got)
			}
			out.Release()
		}
	}
}

// TestStatsKernelAbsentCenters covers a broadcast with fewer centers
// than K (nil tail entries in the kernel's dense table, a shorter sweep
// in the row closure): both paths must skip the absent clusters
// identically.
func TestStatsKernelAbsentCenters(t *testing.T) {
	const k = 8
	for _, dim := range []int{2, 4, 8} {
		ps := mkPoints(100, dim)
		cs := mkCenters(5, dim, nil)
		row := BenchStatsRow(ps, cs, k)
		out := statsKernel(k)(0, []*dataflow.Batch{dataflow.FromRecords(ps), dataflow.FromRecords(cs)})
		if out == nil {
			t.Fatalf("dim=%d: kernel declined", dim)
		}
		if got := out.Records(); !reflect.DeepEqual(got, row) {
			t.Fatalf("dim=%d: mismatch with absent centers\nrow: %+v\nkernel: %+v", dim, row, got)
		}
		out.Release()
	}
}

// TestStatsKernelDeclinesRagged: a partition with mixed dimensions must
// make the kernel decline (return nil) so the row escape hatch runs,
// on the specialized paths as well as the generic one.
func TestStatsKernelDeclinesRagged(t *testing.T) {
	for _, dim := range []int{2, 4, 8} {
		ps := mkPoints(10, dim)
		ps[7].Value = Vector{V: make([]float64, dim+1)}
		cs := mkCenters(4, dim, nil)
		out := statsKernel(4)(0, []*dataflow.Batch{dataflow.FromRecords(ps), dataflow.FromRecords(cs)})
		if out != nil {
			t.Fatalf("dim=%d: kernel accepted ragged partition", dim)
		}
	}
}

// TestWCSSKernelMatchesRowSum checks the WCSS kernel against a direct
// row-side recomputation of the same partial sum.
func TestWCSSKernelMatchesRowSum(t *testing.T) {
	const k, dim = 4, 3
	ps := mkPoints(123, dim)
	cs := mkCenters(k, dim, nil)
	centers := make([][]float64, k)
	for _, c := range cs {
		centers[c.Key] = c.Value.(Vector).V
	}
	want := 0.0
	for _, p := range ps {
		x := p.Value.(Vector).V
		best := math.Inf(1)
		for _, ctr := range centers {
			d := 0.0
			for j := range x {
				diff := x[j] - ctr[j]
				d += diff * diff
			}
			if d < best {
				best = d
			}
		}
		want += best
	}
	out := wcssKernel(k)(0, []*dataflow.Batch{dataflow.FromRecords(ps), dataflow.FromRecords(cs)})
	if out == nil {
		t.Fatal("kernel declined")
	}
	recs := out.Records()
	if len(recs) != 1 || recs[0].Value.(float64) != want {
		t.Fatalf("wcss mismatch: got %+v want %v", recs, want)
	}
	out.Release()
}
