package mllib

import (
	"sort"

	"blaze/internal/dataflow"
	"blaze/internal/datagen"
)

// GBTConfig parameterizes the gradient boosted trees workload (§7.1:
// HiBench LibSVM-style data; the paper notes GBT's models grow large due
// to the tree structures, which drives its disk I/O behaviour).
type GBTConfig struct {
	Points    datagen.PointsSpec
	Parts     int
	Trees     int
	Depth     int
	Bins      int
	LearnRate float64
	Annotate  bool
}

func (c GBTConfig) withDefaults() GBTConfig {
	if c.Parts == 0 {
		c.Parts = 8
	}
	if c.Trees == 0 {
		c.Trees = 5
	}
	if c.Depth == 0 {
		c.Depth = 3
	}
	if c.Bins == 0 {
		c.Bins = 8
	}
	if c.LearnRate == 0 {
		c.LearnRate = 0.3
	}
	return c
}

// split is one internal decision, indexed by heap position (root = 1).
type split struct {
	Feature   int
	Threshold float64
}

// GBTModel is the boosted ensemble: per tree, the split map and the leaf
// values by heap index. It implements storage.Sized with a footprint
// proportional to the total node count, modeling the growing model size
// the paper attributes to GBT.
type GBTModel struct {
	TreeSplits []map[int]split
	TreeLeaves []map[int]float64
	LearnRate  float64
	Base       float64
}

// SizeBytes implements storage.Sized.
func (m GBTModel) SizeBytes() int64 {
	n := 0
	for i := range m.TreeSplits {
		n += len(m.TreeSplits[i]) + len(m.TreeLeaves[i])
	}
	return 64 + 48*int64(n)
}

// predictTree evaluates one tree on x.
func predictTree(splits map[int]split, leaves map[int]float64, x []float64) float64 {
	node := 1
	for {
		if v, ok := leaves[node]; ok {
			return v
		}
		s, ok := splits[node]
		if !ok {
			return 0
		}
		if x[s.Feature] <= s.Threshold {
			node = 2 * node
		} else {
			node = 2*node + 1
		}
	}
}

// Predict evaluates the ensemble on x.
func (m GBTModel) Predict(x []float64) float64 {
	out := m.Base
	for i := range m.TreeSplits {
		out += m.LearnRate * predictTree(m.TreeSplits[i], m.TreeLeaves[i], x)
	}
	return out
}

// binStats accumulates residual statistics for one (node, feature, bin).
type binStats struct {
	Sum float64
	Sq  float64
	N   float64
}

// binEdges are quantile-style thresholds for standard-normal features.
func binEdges(bins int) []float64 {
	edges := make([]float64, bins-1)
	for i := range edges {
		edges[i] = -2.0 + 4.0*float64(i+1)/float64(bins)
	}
	return edges
}

func binOf(x float64, edges []float64) int {
	for i, e := range edges {
		if x <= e {
			return i
		}
	}
	return len(edges)
}

// snapshotSplits deep-copies the partial tree so broadcast datasets stay
// deterministic under recomputation even as the driver keeps splitting.
func snapshotSplits(in map[int]split) map[int]split {
	out := make(map[int]split, len(in))
	for k, v := range in {
		out[k] = v
	}
	return out
}

// GBT trains the boosted ensemble. Each tree level submits one job that
// broadcasts the current model + partial tree to the data partitions and
// aggregates per-(node, feature, bin) residual histograms, exactly as
// MLlib's level-wise tree induction does. Returns the model and final
// training MSE.
func GBT(ctx *dataflow.Context, cfg GBTConfig) (GBTModel, float64) {
	cfg = cfg.withDefaults()
	dim := cfg.Points.Dim
	edges := binEdges(cfg.Bins)
	points := pointsSource(ctx, "gbt-points@0", cfg.Points, cfg.Parts)
	if cfg.Annotate {
		points.Cache()
	}

	model := GBTModel{LearnRate: cfg.LearnRate, Base: 0.5}
	jobIdx := 0
	var prevStats *dataflow.Dataset

	for t := 0; t < cfg.Trees; t++ {
		splits := map[int]split{}
		leaves := map[int]float64{}
		frontier := []int{1} // heap indices open at the current level

		for level := 0; level < cfg.Depth && len(frontier) > 0; level++ {
			jobIdx++
			snapModel := model // value copy; trees slices are append-only
			snap := snapshotSplits(splits)
			frontierSet := map[int]bool{}
			for _, nidx := range frontier {
				frontierSet[nidx] = true
			}

			modelDS := ctx.Source(name("gbt-model", jobIdx), 1, func(int) []dataflow.Record {
				return []dataflow.Record{{Key: 0, Value: snapModel}}
			})
			stats := dataflow.Barrier(name("gbt-stats", jobIdx), dataflow.OpHeavy, points, modelDS,
				func(_ int, ps, ms []dataflow.Record) []dataflow.Record {
					m := ms[0].Value.(GBTModel)
					acc := map[int64]*binStats{}
					for _, p := range ps {
						lp := p.Value.(LabeledPoint)
						resid := lp.Y - m.Predict(lp.X)
						// Route the point through the partial tree.
						node := 1
						reached := true
						for lvl := 0; lvl < level; lvl++ {
							s, ok := snap[node]
							if !ok {
								reached = false
								break
							}
							if lp.X[s.Feature] <= s.Threshold {
								node = 2 * node
							} else {
								node = 2*node + 1
							}
						}
						if !reached || !frontierSet[node] {
							continue
						}
						for f := 0; f < dim; f++ {
							b := binOf(lp.X[f], edges)
							key := (int64(node)*int64(dim)+int64(f))*int64(cfg.Bins) + int64(b)
							bs := acc[key]
							if bs == nil {
								bs = &binStats{}
								acc[key] = bs
							}
							bs.Sum += resid
							bs.Sq += resid * resid
							bs.N++
						}
					}
					keys := make([]int64, 0, len(acc))
					for key := range acc {
						keys = append(keys, key)
					}
					sortInt64s(keys)
					out := make([]dataflow.Record, len(keys))
					for i, key := range keys {
						out[i] = dataflow.Record{Key: key, Value: *acc[key]}
					}
					return out
				})
			agg := stats.ReduceByKey(name("gbt-agg", jobIdx), cfg.Parts, func(a, b any) any {
				av, bv := a.(binStats), b.(binStats)
				return binStats{Sum: av.Sum + bv.Sum, Sq: av.Sq + bv.Sq, N: av.N + bv.N}
			})
			if cfg.Annotate {
				stats.Cache()
			}

			// Collect histograms (the level's job) and choose splits.
			hist := map[int][][]binStats{} // node -> feature -> bins
			for _, part := range agg.Collect() {
				for _, r := range part {
					b := int(r.Key % int64(cfg.Bins))
					f := int(r.Key / int64(cfg.Bins) % int64(dim))
					node := int(r.Key / int64(cfg.Bins) / int64(dim))
					if hist[node] == nil {
						h := make([][]binStats, dim)
						for i := range h {
							h[i] = make([]binStats, cfg.Bins)
						}
						hist[node] = h
					}
					hist[node][f][b] = r.Value.(binStats)
				}
			}

			var nextFrontier []int
			for _, node := range frontier {
				h := hist[node]
				if h == nil {
					continue // no points reached this node
				}
				var total binStats
				for _, bs := range h[0] {
					total.Sum += bs.Sum
					total.Sq += bs.Sq
					total.N += bs.N
				}
				if total.N < 2 {
					leaves[node] = safeMean(total)
					continue
				}
				bestGain, bestF, bestB := 0.0, -1, -1
				var bestLeft, bestRight binStats
				parentVar := total.Sq - total.Sum*total.Sum/total.N
				for f := 0; f < dim; f++ {
					var left binStats
					for b := 0; b < cfg.Bins-1; b++ {
						left.Sum += h[f][b].Sum
						left.Sq += h[f][b].Sq
						left.N += h[f][b].N
						right := binStats{Sum: total.Sum - left.Sum, Sq: total.Sq - left.Sq, N: total.N - left.N}
						if left.N < 1 || right.N < 1 {
							continue
						}
						childVar := (left.Sq - left.Sum*left.Sum/left.N) + (right.Sq - right.Sum*right.Sum/right.N)
						gain := parentVar - childVar
						if gain > bestGain+1e-12 {
							bestGain, bestF, bestB = gain, f, b
							bestLeft, bestRight = left, right
						}
					}
				}
				if bestF < 0 {
					leaves[node] = safeMean(total)
					continue
				}
				splits[node] = split{Feature: bestF, Threshold: edges[bestB]}
				// Provisional child leaf values; a child that splits at
				// the next level loses its leaf status below.
				leaves[2*node] = safeMean(bestLeft)
				leaves[2*node+1] = safeMean(bestRight)
				if level+1 < cfg.Depth {
					nextFrontier = append(nextFrontier, 2*node, 2*node+1)
				}
			}
			frontier = nextFrontier
			for n := range splits {
				delete(leaves, n)
			}

			if prevStats != nil {
				prevStats.Release()
			}
			prevStats = stats
		}

		model.TreeSplits = append(model.TreeSplits, splits)
		model.TreeLeaves = append(model.TreeLeaves, leaves)
	}

	// Final training MSE under the full ensemble.
	finalModel := model
	modelDS := ctx.Source("gbt-model-final@0", 1, func(int) []dataflow.Record {
		return []dataflow.Record{{Key: 0, Value: finalModel}}
	})
	mseDS := dataflow.Barrier("gbt-mse@0", dataflow.OpMedium, points, modelDS,
		func(_ int, ps, ms []dataflow.Record) []dataflow.Record {
			m := ms[0].Value.(GBTModel)
			se, n := 0.0, 0.0
			for _, p := range ps {
				lp := p.Value.(LabeledPoint)
				e := lp.Y - m.Predict(lp.X)
				se += e * e
				n++
			}
			return []dataflow.Record{{Key: 0, Value: []float64{se, n}}}
		}).ReduceByKey("gbt-mse-agg@0", 1, func(a, b any) any {
		av, bv := a.([]float64), b.([]float64)
		return []float64{av[0] + bv[0], av[1] + bv[1]}
	})
	var mse float64
	for _, part := range mseDS.Collect() {
		for _, r := range part {
			v := r.Value.([]float64)
			if v[1] > 0 {
				mse = v[0] / v[1]
			}
		}
	}
	return model, mse
}

func safeMean(b binStats) float64 {
	if b.N <= 0 {
		return 0
	}
	return b.Sum / b.N
}

// sortInt64s sorts in place (insertion-friendly sizes).
func sortInt64s(xs []int64) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
}

// GBTWorkload wraps GBT as a profile-compatible workload.
func GBTWorkload(cfg GBTConfig) func(ctx *dataflow.Context, scale float64) {
	return func(ctx *dataflow.Context, scale float64) {
		c := cfg.withDefaults()
		c.Points.N = scaledN(c.Points.N, scale)
		GBT(ctx, c)
	}
}
