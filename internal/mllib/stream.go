package mllib

import (
	"math"

	"blaze/internal/dataflow"
	"blaze/internal/datagen"
)

// Streaming k-means: the micro-batch variant of the KMeans workload.
// Each window clusters a fresh drifted point batch (the generator
// re-seeded per window) with a few Lloyd's iterations, starting from
// the previous window's final centroids — the carried state that makes
// the stream converge across windows while each window's point batch
// and intermediate statistics die with the window.

// KMeansStreamConfig parameterizes the streaming k-means stream.
type KMeansStreamConfig struct {
	// Data describes one window's point batch; window w re-seeds the
	// generator with Seed+w-1, modeling concept drift between batches.
	Data  datagen.ClusterSpec
	Parts int
	// ItersPerWindow is how many Lloyd's iterations each window runs
	// (default 3).
	ItersPerWindow int
	// Annotate applies MLlib-style cache() annotations for
	// annotation-based systems; Blaze runs without them.
	Annotate bool
}

func (c KMeansStreamConfig) withDefaults() KMeansStreamConfig {
	if c.Parts == 0 {
		c.Parts = 8
	}
	if c.ItersPerWindow == 0 {
		c.ItersPerWindow = 3
	}
	return c
}

// KMeansStream returns the per-window step driver. The returned closure
// owns the carried state (the previous window's final centroid
// dataset); calling it with window w submits window w's jobs and
// returns the centroids after that window's iterations.
func KMeansStream(cfg KMeansStreamConfig) func(ctx *dataflow.Context, window int) [][]float64 {
	cfg = cfg.withDefaults()
	var centroids *dataflow.Dataset
	return func(ctx *dataflow.Context, window int) [][]float64 {
		spec := cfg.Data
		spec.Seed += int64(window - 1)
		base := (window - 1) * (cfg.ItersPerWindow + 1)

		points := clusterSource(ctx, name("skm-points", base), spec, cfg.Parts)
		if cfg.Annotate {
			points.Cache()
		}
		if centroids == nil {
			// Window 1 seeds from the first K points, like the batch
			// workload; every later window carries centroids in.
			init := spec
			centroids = ctx.Source(name("skm-cent", base), 1, func(int) []dataflow.Record {
				out := make([]dataflow.Record, init.K)
				for c := 0; c < init.K; c++ {
					x, _ := init.Point(int64(c))
					out[c] = dataflow.Record{Key: int64(c), Value: Vector{V: x}}
				}
				return out
			})
		}

		// The carried-in centroid dataset is never explicitly released:
		// windowed lifetime management retires cross-window state once
		// its last-consumer window has passed.
		carriedIn := centroids
		var prevStats, prevCentDS *dataflow.Dataset
		var centers [][]float64
		for i := 1; i <= cfg.ItersPerWindow; i++ {
			it := base + i
			stats := dataflow.Barrier(name("skm-stats", it), dataflow.OpHeavy, points, centroids,
				func(_ int, ps, cs []dataflow.Record) []dataflow.Record {
					ctrs := make([][]float64, spec.K)
					for _, c := range cs {
						ctrs[c.Key] = c.Value.(Vector).V
					}
					acc := make(map[int64]*sumCount)
					for _, p := range ps {
						x := p.Value.(Vector).V
						best, bestD := 0, math.Inf(1)
						for c, ctr := range ctrs {
							if ctr == nil {
								continue
							}
							d := 0.0
							for j := range x {
								diff := x[j] - ctr[j]
								d += diff * diff
							}
							if d < bestD {
								best, bestD = c, d
							}
						}
						sc := acc[int64(best)]
						if sc == nil {
							sc = &sumCount{Sum: make([]float64, len(x))}
							acc[int64(best)] = sc
						}
						for j := range x {
							sc.Sum[j] += x[j]
						}
						sc.N++
					}
					var out []dataflow.Record
					for c := int64(0); c < int64(spec.K); c++ {
						if sc := acc[c]; sc != nil {
							out = append(out, dataflow.Record{Key: c, Value: *sc})
						}
					}
					return out
				}).WithBatchKernel(statsKernel(spec.K))
			agg := stats.ReduceByKey(name("skm-agg", it), 1, func(a, b any) any {
				av, bv := a.(sumCount), b.(sumCount)
				sum := make([]float64, len(av.Sum))
				for j := range sum {
					sum[j] = av.Sum[j] + bv.Sum[j]
				}
				return sumCount{Sum: sum, N: av.N + bv.N}
			})
			newCent := agg.Map(name("skm-cent", it), func(r dataflow.Record) dataflow.Record {
				sc := r.Value.(sumCount)
				v := make([]float64, len(sc.Sum))
				for j := range v {
					v[j] = sc.Sum[j] / math.Max(sc.N, 1)
				}
				return dataflow.Record{Key: r.Key, Value: Vector{V: v}}
			})
			if cfg.Annotate {
				newCent.Cache()
			}

			centers = make([][]float64, spec.K)
			for _, part := range newCent.Collect() { // the iteration's job
				for _, r := range part {
					centers[r.Key] = r.Value.(Vector).V
				}
			}

			if prevStats != nil {
				prevStats.Release()
			}
			if prevCentDS != nil && prevCentDS != carriedIn {
				prevCentDS.Release()
			}
			prevStats, prevCentDS = stats, centroids
			centroids = newCent
		}
		return centers
	}
}
