// Package cachepolicy implements the eviction policies the paper
// evaluates against Blaze (§3.1, §7.1): the classic history-based LRU,
// FIFO and LFU, and the dependency-aware LRC (least reference count,
// Yu et al., INFOCOM'17) and MRD (most reference distance, Perez et al.,
// ICPP'18).
//
// A policy is a pure ordering over cached block metadata: the first block
// in the returned order is the first victim. All bookkeeping the
// orderings rely on (access times, reference counts, reference distances,
// costs) is maintained by the engine's cache controller, which keeps the
// policies trivially testable.
package cachepolicy

import (
	"fmt"
	"sort"
	"sync"

	"blaze/internal/storage"
)

// Policy orders cached blocks by eviction priority.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Order returns the blocks sorted so that the preferred victim comes
	// first. The input slice is not modified.
	Order(blocks []*storage.BlockMeta) []*storage.BlockMeta
}

// tieBreak provides a deterministic final ordering criterion so that runs
// are reproducible regardless of map iteration order upstream.
func tieBreak(a, b *storage.BlockMeta) bool {
	if a.ID.Dataset != b.ID.Dataset {
		return a.ID.Dataset < b.ID.Dataset
	}
	return a.ID.Partition < b.ID.Partition
}

func sorted(blocks []*storage.BlockMeta, less func(a, b *storage.BlockMeta) bool) []*storage.BlockMeta {
	out := append([]*storage.BlockMeta(nil), blocks...)
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if less(a, b) {
			return true
		}
		if less(b, a) {
			return false
		}
		return tieBreak(a, b)
	})
	return out
}

// LRU evicts the least recently used block first — Spark's default
// eviction policy.
type LRU struct{}

// Name implements Policy.
func (LRU) Name() string { return "lru" }

// Order implements Policy.
func (LRU) Order(blocks []*storage.BlockMeta) []*storage.BlockMeta {
	return sorted(blocks, func(a, b *storage.BlockMeta) bool {
		return a.LastAccess < b.LastAccess
	})
}

// FIFO evicts the earliest inserted block first.
type FIFO struct{}

// Name implements Policy.
func (FIFO) Name() string { return "fifo" }

// Order implements Policy.
func (FIFO) Order(blocks []*storage.BlockMeta) []*storage.BlockMeta {
	return sorted(blocks, func(a, b *storage.BlockMeta) bool {
		return a.InsertSeq < b.InsertSeq
	})
}

// LFU evicts the least frequently accessed block first, breaking ties by
// recency.
type LFU struct{}

// Name implements Policy.
func (LFU) Name() string { return "lfu" }

// Order implements Policy.
func (LFU) Order(blocks []*storage.BlockMeta) []*storage.BlockMeta {
	return sorted(blocks, func(a, b *storage.BlockMeta) bool {
		if a.AccessCount != b.AccessCount {
			return a.AccessCount < b.AccessCount
		}
		return a.LastAccess < b.LastAccess
	})
}

// LRC evicts the block with the smallest remaining reference count in the
// currently submitted job's DAG. Blocks with zero remaining references go
// first, as they provide no further benefit.
type LRC struct{}

// Name implements Policy.
func (LRC) Name() string { return "lrc" }

// Order implements Policy.
func (LRC) Order(blocks []*storage.BlockMeta) []*storage.BlockMeta {
	return sorted(blocks, func(a, b *storage.BlockMeta) bool {
		if a.RefCount != b.RefCount {
			return a.RefCount < b.RefCount
		}
		return a.LastAccess < b.LastAccess
	})
}

// MRD evicts the block whose next reference is farthest away (largest
// reference distance), approximating Belady's algorithm with the current
// job's stage schedule. The engine prefetches in ascending reference
// distance order using PrefetchOrder.
type MRD struct{}

// Name implements Policy.
func (MRD) Name() string { return "mrd" }

// Order implements Policy.
func (MRD) Order(blocks []*storage.BlockMeta) []*storage.BlockMeta {
	return sorted(blocks, func(a, b *storage.BlockMeta) bool {
		if a.RefDistance != b.RefDistance {
			return a.RefDistance > b.RefDistance
		}
		return a.LastAccess < b.LastAccess
	})
}

// CostAscending evicts the block with the smallest attached potential
// recovery cost first. This is the ordering used by the paper's
// +CostAware ablation (§7.3), which picks victims with the smallest disk
// access costs.
type CostAscending struct{}

// Name implements Policy.
func (CostAscending) Name() string { return "cost" }

// Order implements Policy.
func (CostAscending) Order(blocks []*storage.BlockMeta) []*storage.BlockMeta {
	return sorted(blocks, func(a, b *storage.BlockMeta) bool {
		return a.Cost < b.Cost
	})
}

// PrefetchOrder returns on-disk candidates sorted by ascending reference
// distance — MRD prefetches the data needed soonest.
func PrefetchOrder(blocks []*storage.BlockMeta) []*storage.BlockMeta {
	return sorted(blocks, func(a, b *storage.BlockMeta) bool {
		return a.RefDistance < b.RefDistance
	})
}

// ByName returns the policy with the given name, or false if unknown.
// Stateful policies (tinylfu, lecar) are freshly constructed per call.
func ByName(name string) (Policy, bool) {
	switch name {
	case "lru":
		return LRU{}, true
	case "fifo":
		return FIFO{}, true
	case "lfu":
		return LFU{}, true
	case "lfuda":
		return LFUDA{}, true
	case "arc":
		return ARC{}, true
	case "gdwheel":
		return GDWheel{}, true
	case "tinylfu":
		return NewTinyLFU(256), true
	case "lecar":
		return NewLeCaR(), true
	case "lrc":
		return LRC{}, true
	case "mrd":
		return MRD{}, true
	case "cost":
		return CostAscending{}, true
	default:
		regMu.RLock()
		f, ok := registry[name]
		regMu.RUnlock()
		if ok {
			return f(), true
		}
		return nil, false
	}
}

// registry holds user-registered policy factories, keyed by name. Each
// lookup invokes the factory so stateful policies get a fresh instance
// per run, like the built-in tinylfu/lecar.
var (
	regMu    sync.RWMutex
	registry = map[string]func() Policy{}
)

// Register adds a user-defined policy factory under the given name,
// making it resolvable through ByName (and hence runnable as a
// "policy-<name>" system). Registering a name that collides with a
// built-in or an earlier registration is an error.
func Register(name string, factory func() Policy) error {
	if name == "" || factory == nil {
		return fmt.Errorf("cachepolicy: Register requires a name and a factory")
	}
	if _, builtin := ByName(name); builtin {
		return fmt.Errorf("cachepolicy: policy %q already registered", name)
	}
	regMu.Lock()
	defer regMu.Unlock()
	registry[name] = factory
	return nil
}

// Names lists every registered policy name, built-ins first, then
// user-registered names in sorted order.
func Names() []string {
	out := []string{"lru", "fifo", "lfu", "lfuda", "arc", "gdwheel", "tinylfu", "lecar", "lrc", "mrd", "cost"}
	regMu.RLock()
	extra := make([]string, 0, len(registry))
	for name := range registry {
		extra = append(extra, name)
	}
	regMu.RUnlock()
	sort.Strings(extra)
	return append(out, extra...)
}
