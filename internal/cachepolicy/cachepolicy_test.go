package cachepolicy

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"blaze/internal/storage"
)

func meta(ds, part int) *storage.BlockMeta {
	return &storage.BlockMeta{ID: storage.BlockID{Dataset: ds, Partition: part}}
}

func TestLRUOrder(t *testing.T) {
	a, b, c := meta(1, 0), meta(1, 1), meta(1, 2)
	a.LastAccess = 3 * time.Second
	b.LastAccess = 1 * time.Second
	c.LastAccess = 2 * time.Second
	got := (LRU{}).Order([]*storage.BlockMeta{a, b, c})
	if got[0] != b || got[1] != c || got[2] != a {
		t.Fatalf("LRU order wrong: %v %v %v", got[0].ID, got[1].ID, got[2].ID)
	}
}

func TestFIFOOrder(t *testing.T) {
	a, b := meta(1, 0), meta(1, 1)
	a.InsertSeq = 5
	b.InsertSeq = 2
	got := (FIFO{}).Order([]*storage.BlockMeta{a, b})
	if got[0] != b {
		t.Fatal("FIFO should evict earliest insert first")
	}
}

func TestLFUOrderWithRecencyTie(t *testing.T) {
	a, b, c := meta(1, 0), meta(1, 1), meta(1, 2)
	a.AccessCount, a.LastAccess = 5, 1*time.Second
	b.AccessCount, b.LastAccess = 2, 9*time.Second
	c.AccessCount, c.LastAccess = 2, 1*time.Second
	got := (LFU{}).Order([]*storage.BlockMeta{a, b, c})
	if got[0] != c || got[1] != b || got[2] != a {
		t.Fatalf("LFU order wrong: %v %v %v", got[0].ID, got[1].ID, got[2].ID)
	}
}

func TestLRCEvictsSmallestRefCount(t *testing.T) {
	a, b := meta(1, 0), meta(1, 1)
	a.RefCount = 4
	b.RefCount = 0
	got := (LRC{}).Order([]*storage.BlockMeta{a, b})
	if got[0] != b {
		t.Fatal("LRC should evict zero-reference block first")
	}
}

func TestMRDEvictsFarthestReference(t *testing.T) {
	a, b := meta(1, 0), meta(1, 1)
	a.RefDistance = 1 // needed next stage
	b.RefDistance = 9 // needed far away
	got := (MRD{}).Order([]*storage.BlockMeta{a, b})
	if got[0] != b {
		t.Fatal("MRD should evict the most distant reference first")
	}
	pf := PrefetchOrder([]*storage.BlockMeta{b, a})
	if pf[0] != a {
		t.Fatal("prefetch should fetch the nearest reference first")
	}
}

func TestCostAscending(t *testing.T) {
	a, b := meta(1, 0), meta(1, 1)
	a.Cost = 12.5
	b.Cost = 0.5
	got := (CostAscending{}).Order([]*storage.BlockMeta{a, b})
	if got[0] != b {
		t.Fatal("cost-aware should evict the cheapest-to-recover block first")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"lru", "fifo", "lfu", "lrc", "mrd", "cost"} {
		p, ok := ByName(name)
		if !ok || p.Name() != name {
			t.Fatalf("ByName(%q) = %v, %v", name, p, ok)
		}
	}
	if _, ok := ByName("belady"); ok {
		t.Fatal("unknown policy should not resolve")
	}
}

func allPolicies() []Policy {
	return []Policy{LRU{}, FIFO{}, LFU{}, LRC{}, MRD{}, CostAscending{}}
}

// Property: every policy returns a permutation of its input and never
// mutates the input slice.
func TestOrderIsPermutation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(20)
		in := make([]*storage.BlockMeta, n)
		for i := range in {
			m := meta(rng.Intn(5), rng.Intn(10))
			m.LastAccess = time.Duration(rng.Intn(100)) * time.Millisecond
			m.AccessCount = rng.Intn(5)
			m.InsertSeq = int64(rng.Intn(100))
			m.RefCount = rng.Intn(4)
			m.RefDistance = rng.Intn(8)
			m.Cost = rng.Float64()
			in[i] = m
		}
		orig := append([]*storage.BlockMeta(nil), in...)
		for _, p := range allPolicies() {
			out := p.Order(in)
			if len(out) != len(in) {
				return false
			}
			seen := map[*storage.BlockMeta]int{}
			for _, m := range out {
				seen[m]++
			}
			for _, m := range in {
				seen[m]--
			}
			for _, c := range seen {
				if c != 0 {
					return false
				}
			}
			for i := range in {
				if in[i] != orig[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: orderings are deterministic — the same input (even permuted)
// yields the same victim sequence, thanks to the id tie-break.
func TestOrderDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(15)
		in := make([]*storage.BlockMeta, n)
		for i := range in {
			m := meta(i/4, i%4)
			m.LastAccess = time.Duration(rng.Intn(3)) * time.Second
			m.AccessCount = rng.Intn(2)
			m.RefCount = rng.Intn(2)
			m.RefDistance = rng.Intn(3)
			m.Cost = float64(rng.Intn(3))
			in[i] = m
		}
		shuffled := append([]*storage.BlockMeta(nil), in...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		for _, p := range allPolicies() {
			a := p.Order(in)
			b := p.Order(shuffled)
			for i := range a {
				if a[i].ID != b[i].ID {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
