package cachepolicy

import (
	"math/rand"
	"testing"
	"time"

	"blaze/internal/storage"
)

func TestTinyLFUFrequencyOrdering(t *testing.T) {
	p := NewTinyLFU(64)
	hot := storage.BlockID{Dataset: 1, Partition: 0}
	cold := storage.BlockID{Dataset: 1, Partition: 1}
	p.OnInsert(hot)
	p.OnInsert(cold)
	for i := 0; i < 20; i++ {
		p.OnAccess(hot)
	}
	blocks := []*storage.BlockMeta{
		{ID: hot}, {ID: cold},
	}
	got := p.Order(blocks)
	if got[0].ID != cold {
		t.Fatal("TinyLFU should evict the cold block first")
	}
}

func TestTinyLFUSketchAges(t *testing.T) {
	s := newCMSketch(64)
	id := storage.BlockID{Dataset: 1, Partition: 1}
	for i := 0; i < 100; i++ {
		s.touch(id)
	}
	before := s.estimate(id)
	// Flood with other keys to trigger the periodic halving.
	for d := 0; d < 5000; d++ {
		s.touch(storage.BlockID{Dataset: d + 10, Partition: 0})
	}
	after := s.estimate(id)
	if after >= before {
		t.Fatalf("sketch aging should decay counts: before=%d after=%d", before, after)
	}
}

func TestGDWheelPrefersCheapVictims(t *testing.T) {
	cheap := &storage.BlockMeta{ID: storage.BlockID{Dataset: 1, Partition: 0}, Cost: 0.001}
	costly := &storage.BlockMeta{ID: storage.BlockID{Dataset: 1, Partition: 1}, Cost: 10}
	got := (GDWheel{}).Order([]*storage.BlockMeta{costly, cheap})
	if got[0] != cheap {
		t.Fatal("GDWheel should evict the low-credit (cheap) block first")
	}
}

func TestGDWheelAgingOvercomesCost(t *testing.T) {
	// A costly but ancient block loses to a cheap but fresh one once the
	// clock inflation exceeds the cost difference.
	ancient := &storage.BlockMeta{ID: storage.BlockID{Dataset: 1, Partition: 0}, Cost: 2, LastAccess: 0}
	fresh := &storage.BlockMeta{ID: storage.BlockID{Dataset: 1, Partition: 1}, Cost: 0.5, LastAccess: 10 * time.Second}
	got := (GDWheel{}).Order([]*storage.BlockMeta{fresh, ancient})
	if got[0] != ancient {
		t.Fatal("aged-out costly block should be evicted before a fresh cheap one")
	}
}

func TestLeCaRLearnsFromMistakes(t *testing.T) {
	l := NewLeCaR()
	id := storage.BlockID{Dataset: 1, Partition: 0}
	// Simulate: LRU evicted this block, then it came back — LRU should be
	// penalized.
	l.history[id] = 1
	w0, _ := l.Weights()
	l.OnInsert(id)
	w1, _ := l.Weights()
	if w1 >= w0 {
		t.Fatalf("LRU expert should be penalized: %v -> %v", w0, w1)
	}
	// Weights stay normalized and floored.
	lru, lfu := l.Weights()
	if lru+lfu < 0.99 || lru+lfu > 1.01 {
		t.Fatalf("weights not normalized: %v + %v", lru, lfu)
	}
	if lru < 0.009 || lfu < 0.009 {
		t.Fatalf("weights below floor: %v %v", lru, lfu)
	}
}

func TestLeCaRAccessClearsHistory(t *testing.T) {
	l := NewLeCaR()
	id := storage.BlockID{Dataset: 2, Partition: 3}
	l.history[id] = 2
	l.OnAccess(id)
	w0, _ := l.Weights()
	l.OnInsert(id) // no longer in history: no penalty
	w1, _ := l.Weights()
	if w0 != w1 {
		t.Fatal("cleared history should prevent penalties")
	}
}

func TestLFUDAOrdering(t *testing.T) {
	// Frequent-but-old vs rare-but-recent: dynamic aging lets the recent
	// one win when the age gap is large enough.
	old := &storage.BlockMeta{ID: storage.BlockID{Dataset: 1, Partition: 0}, AccessCount: 3, LastAccess: 0}
	recent := &storage.BlockMeta{ID: storage.BlockID{Dataset: 1, Partition: 1}, AccessCount: 1, LastAccess: 30 * time.Second}
	got := (LFUDA{}).Order([]*storage.BlockMeta{recent, old})
	if got[0] != old {
		t.Fatal("LFUDA should age out the old block")
	}
}

func TestARCSplitsRecencyFrequency(t *testing.T) {
	once := &storage.BlockMeta{ID: storage.BlockID{Dataset: 1, Partition: 0}, AccessCount: 1, LastAccess: 99 * time.Second}
	many := &storage.BlockMeta{ID: storage.BlockID{Dataset: 1, Partition: 1}, AccessCount: 9, LastAccess: time.Second}
	got := (ARC{}).Order([]*storage.BlockMeta{many, once})
	if got[0] != once {
		t.Fatal("ARC should evict from the seen-once list first")
	}
}

func TestByNameIncludesAllPolicies(t *testing.T) {
	for _, name := range Names() {
		p, ok := ByName(name)
		if !ok {
			t.Fatalf("policy %q not constructible", name)
		}
		if p.Name() != name {
			t.Fatalf("policy %q reports name %q", name, p.Name())
		}
	}
}

// Property: the stateful policies also return permutations and never
// mutate their input.
func TestStatefulOrderIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	policies := []Policy{NewTinyLFU(32), NewLeCaR(), GDWheel{}, LFUDA{}, ARC{}}
	for trial := 0; trial < 30; trial++ {
		n := rng.Intn(12)
		in := make([]*storage.BlockMeta, n)
		for i := range in {
			in[i] = &storage.BlockMeta{
				ID:          storage.BlockID{Dataset: rng.Intn(4), Partition: rng.Intn(6)},
				AccessCount: rng.Intn(5),
				LastAccess:  time.Duration(rng.Intn(50)) * time.Millisecond,
				Cost:        rng.Float64(),
			}
		}
		orig := append([]*storage.BlockMeta(nil), in...)
		for _, p := range policies {
			out := p.Order(in)
			if len(out) != len(in) {
				t.Fatalf("%s: length mismatch", p.Name())
			}
			seen := map[*storage.BlockMeta]int{}
			for _, m := range out {
				seen[m]++
			}
			for i, m := range in {
				seen[m]--
				if in[i] != orig[i] {
					t.Fatalf("%s mutated its input", p.Name())
				}
			}
			for _, c := range seen {
				if c != 0 {
					t.Fatalf("%s: not a permutation", p.Name())
				}
			}
		}
	}
}
