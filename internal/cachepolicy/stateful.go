package cachepolicy

import (
	"blaze/internal/storage"
)

// StatefulPolicy extends Policy with lifecycle hooks for policies that
// maintain internal state beyond the per-block metadata — the
// learning-based policies of §3.1 (TinyLFU, LeCaR) and the cost wheel
// (GDWheel). The engine's annotation controller forwards block events to
// these hooks when the configured policy implements them.
type StatefulPolicy interface {
	Policy
	// OnInsert is invoked when a block enters the memory store.
	OnInsert(id storage.BlockID)
	// OnAccess is invoked on every cache hit.
	OnAccess(id storage.BlockID)
	// OnEvict is invoked when a block leaves the memory store.
	OnEvict(id storage.BlockID)
}

// Cloner is implemented by stateful policies that can produce a fresh,
// empty instance of themselves. Each executor evicts independently, so
// the engine clones the configured policy per executor — a single shared
// instance would observe the interleaved access streams of all executors
// and pollute its learned state.
type Cloner interface {
	// Clone returns a fresh instance with the same configuration and no
	// learned state.
	Clone() Policy
}

// cmSketch is a tiny count-min sketch with 4 rows, used by TinyLFU as its
// approximate frequency oracle.
type cmSketch struct {
	rows [4][]uint8
	mask uint64
	ops  int
	// cap halves all counters periodically (the "reset" aging of TinyLFU).
	resetAt int
}

func newCMSketch(size int) *cmSketch {
	// Round up to a power of two.
	n := 64
	for n < size {
		n <<= 1
	}
	s := &cmSketch{mask: uint64(n - 1), resetAt: n * 8}
	for i := range s.rows {
		s.rows[i] = make([]uint8, n)
	}
	return s
}

func sketchHash(id storage.BlockID, row int) uint64 {
	x := uint64(id.Dataset)<<32 ^ uint64(uint32(id.Partition))
	x ^= uint64(row+1) * 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func (s *cmSketch) touch(id storage.BlockID) {
	for r := range s.rows {
		i := sketchHash(id, r) & s.mask
		if s.rows[r][i] < 255 {
			s.rows[r][i]++
		}
	}
	s.ops++
	if s.ops >= s.resetAt {
		s.ops = 0
		for r := range s.rows {
			for i := range s.rows[r] {
				s.rows[r][i] /= 2
			}
		}
	}
}

func (s *cmSketch) estimate(id storage.BlockID) int {
	est := 255
	for r := range s.rows {
		i := sketchHash(id, r) & s.mask
		if int(s.rows[r][i]) < est {
			est = int(s.rows[r][i])
		}
	}
	return est
}

// TinyLFU approximates least-frequently-used eviction with a count-min
// frequency sketch (Einziger et al., ToS'17) — one of the learning-based
// policies §3.1 surveys. Blocks with the lowest estimated long-run
// frequency are evicted first.
type TinyLFU struct {
	sketch *cmSketch
	n      int
}

// NewTinyLFU creates a TinyLFU policy sized for roughly n tracked blocks.
func NewTinyLFU(n int) *TinyLFU {
	return &TinyLFU{sketch: newCMSketch(n * 4), n: n}
}

// Name implements Policy.
func (t *TinyLFU) Name() string { return "tinylfu" }

// Clone implements Cloner: a fresh sketch of the same size.
func (t *TinyLFU) Clone() Policy { return NewTinyLFU(t.n) }

// Order implements Policy: ascending estimated frequency, recency ties.
func (t *TinyLFU) Order(blocks []*storage.BlockMeta) []*storage.BlockMeta {
	return sorted(blocks, func(a, b *storage.BlockMeta) bool {
		fa, fb := t.sketch.estimate(a.ID), t.sketch.estimate(b.ID)
		if fa != fb {
			return fa < fb
		}
		return a.LastAccess < b.LastAccess
	})
}

// OnInsert implements StatefulPolicy.
func (t *TinyLFU) OnInsert(id storage.BlockID) { t.sketch.touch(id) }

// OnAccess implements StatefulPolicy.
func (t *TinyLFU) OnAccess(id storage.BlockID) { t.sketch.touch(id) }

// OnEvict implements StatefulPolicy.
func (t *TinyLFU) OnEvict(id storage.BlockID) {}

// GDWheel approximates the GreedyDual cost-aware replacement of Li & Cox
// (EuroSys'15): each block carries a credit equal to its (attached)
// recovery cost, recharged on access and decayed by a global clock; the
// block with the least remaining credit is evicted first. This reproduction
// uses the attached BlockMeta.Cost as the cost input, decayed by the time
// since last access — a faithful priority ordering without the wheel's
// O(1) bucketing (our candidate sets are small).
type GDWheel struct{}

// Name implements Policy.
func (GDWheel) Name() string { return "gdwheel" }

// Order implements Policy: ascending (cost - age) priority.
func (GDWheel) Order(blocks []*storage.BlockMeta) []*storage.BlockMeta {
	// The GreedyDual priority of a block is its cost credit minus the
	// global inflation; ordering by (Cost + LastAccess-as-seconds) gives
	// the same eviction order as maintaining an explicit L value.
	return sorted(blocks, func(a, b *storage.BlockMeta) bool {
		pa := a.Cost + a.LastAccess.Seconds()
		pb := b.Cost + b.LastAccess.Seconds()
		return pa < pb
	})
}

// LeCaR (Vietri et al., HotStorage'18) learns online whether LRU or LFU is
// the better policy via regret minimization: each eviction follows one of
// the two experts chosen by weight, and when a recently evicted block is
// re-requested the expert responsible is penalized.
type LeCaR struct {
	wLRU, wLFU   float64
	learningRate float64
	discount     float64
	// history remembers which expert evicted a block.
	history map[storage.BlockID]byte // 1 = LRU's choice, 2 = LFU's
	// seq provides the deterministic "randomness" for expert selection.
	seq uint64
}

// NewLeCaR creates a LeCaR policy with the reference hyperparameters.
func NewLeCaR() *LeCaR {
	return &LeCaR{
		wLRU: 0.5, wLFU: 0.5,
		learningRate: 0.45,
		discount:     0.995,
		history:      make(map[storage.BlockID]byte),
	}
}

// Name implements Policy.
func (l *LeCaR) Name() string { return "lecar" }

// Clone implements Cloner: fresh weights and history.
func (l *LeCaR) Clone() Policy { return NewLeCaR() }

// Order implements Policy: picks the expert by current weights
// (deterministically pseudo-random) and returns that expert's order.
func (l *LeCaR) Order(blocks []*storage.BlockMeta) []*storage.BlockMeta {
	l.seq++
	x := l.seq * 0x9e3779b97f4a7c15
	x ^= x >> 33
	r := float64(x%1000) / 1000.0
	var ordered []*storage.BlockMeta
	var expert byte
	if r < l.wLRU/(l.wLRU+l.wLFU) {
		ordered = (LRU{}).Order(blocks)
		expert = 1
	} else {
		ordered = (LFU{}).Order(blocks)
		expert = 2
	}
	for _, m := range ordered {
		if _, ok := l.history[m.ID]; !ok {
			l.history[m.ID] = expert
		}
	}
	return ordered
}

// OnInsert implements StatefulPolicy.
func (l *LeCaR) OnInsert(id storage.BlockID) {
	// A (re)insert of a block in the eviction history means the expert
	// that evicted it made a mistake: penalize it.
	l.penalize(id)
}

// OnAccess implements StatefulPolicy.
func (l *LeCaR) OnAccess(id storage.BlockID) {
	delete(l.history, id)
}

// OnEvict implements StatefulPolicy.
func (l *LeCaR) OnEvict(id storage.BlockID) {}

func (l *LeCaR) penalize(id storage.BlockID) {
	expert, ok := l.history[id]
	if !ok {
		return
	}
	delete(l.history, id)
	switch expert {
	case 1:
		l.wLRU *= l.discount * (1 - l.learningRate)
	case 2:
		l.wLFU *= l.discount * (1 - l.learningRate)
	}
	// Renormalize with a floor so neither expert dies permanently.
	const floor = 0.01
	total := l.wLRU + l.wLFU
	l.wLRU = l.wLRU/total*(1-2*floor) + floor
	l.wLFU = l.wLFU/total*(1-2*floor) + floor
}

// Weights exposes the current expert weights (tests, diagnostics).
func (l *LeCaR) Weights() (lru, lfu float64) { return l.wLRU, l.wLFU }

// LFUDA is LFU with dynamic aging (Arlitt et al., SIGMETRICS PER'00): a
// block's priority is its access count plus the cache age at its last
// access, which prevents formerly-hot blocks from squatting forever.
type LFUDA struct{}

// Name implements Policy.
func (LFUDA) Name() string { return "lfuda" }

// Order implements Policy.
func (LFUDA) Order(blocks []*storage.BlockMeta) []*storage.BlockMeta {
	return sorted(blocks, func(a, b *storage.BlockMeta) bool {
		pa := float64(a.AccessCount) + a.LastAccess.Seconds()
		pb := float64(b.AccessCount) + b.LastAccess.Seconds()
		return pa < pb
	})
}

// ARC-lite approximates the adaptive replacement cache's key behaviour —
// balancing recency and frequency — by splitting candidates into
// "seen once" (AccessCount <= 1) and "seen many" lists, evicting from the
// recency list first, each list in LRU order.
type ARC struct{}

// Name implements Policy.
func (ARC) Name() string { return "arc" }

// Order implements Policy.
func (ARC) Order(blocks []*storage.BlockMeta) []*storage.BlockMeta {
	return sorted(blocks, func(a, b *storage.BlockMeta) bool {
		aOnce := a.AccessCount <= 1
		bOnce := b.AccessCount <= 1
		if aOnce != bOnce {
			return aOnce // recency list (seen once) evicts first
		}
		return a.LastAccess < b.LastAccess
	})
}
