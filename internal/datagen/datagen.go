// Package datagen provides the seeded synthetic input generators for the
// six evaluation workloads (§7.1). The paper uses SparkBench graph data,
// Criteo click logs, HiBench LibSVM/uniform data and synthetic ratings;
// this reproduction generates inputs with the same skew characteristics
// (power-law graph degrees, labeled feature vectors, uniform clustering
// points, user×item ratings) at laptop scale.
//
// All generators are deterministic per (seed, vertex/point id), so a
// partition's content is independent of partition count and identical
// across runs — a requirement for recomputation-based recovery.
package datagen

import (
	"math"
	"math/rand"
)

// mix64 is the splitmix64 finalizer, used to derive per-entity seeds.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// rngFor builds a deterministic RNG for one entity of one generator.
func rngFor(seed int64, entity int64) *rand.Rand {
	return rand.New(rand.NewSource(int64(mix64(uint64(seed) ^ mix64(uint64(entity))))))
}

// GraphSpec describes a synthetic power-law graph in the style of the
// SparkBench generator used for PR and CC.
type GraphSpec struct {
	Seed     int64
	Vertices int
	// AvgDegree is the mean out-degree; actual degrees follow a bounded
	// Pareto distribution, giving the partition-size skew Fig. 3 shows.
	AvgDegree int
	// Symmetric adds reverse edges (undirected view), as Connected
	// Components requires.
	Symmetric bool
}

// OutDegree returns vertex v's out-degree: a bounded Pareto sample with
// mean ≈ AvgDegree (power-law exponent ≈ 2, capped at 40× the mean).
func (g GraphSpec) OutDegree(v int64) int {
	rng := rngFor(g.Seed, v)
	// Pareto with alpha=2: mean = alpha/(alpha-1) * xm = 2*xm, so
	// xm = AvgDegree/2 gives the requested mean.
	xm := float64(g.AvgDegree) / 2
	u := rng.Float64()
	if u < 1e-9 {
		u = 1e-9
	}
	d := xm / math.Sqrt(u)
	maxD := float64(40 * g.AvgDegree)
	if d > maxD {
		d = maxD
	}
	if d < 1 {
		d = 1
	}
	return int(d)
}

// Neighbors returns vertex v's out-neighbors (deterministic).
func (g GraphSpec) Neighbors(v int64) []int64 {
	rng := rngFor(g.Seed, v)
	_ = rng.Float64() // consumed by OutDegree's sample; keep streams aligned
	deg := g.OutDegree(v)
	out := make([]int64, deg)
	for i := range out {
		out[i] = int64(rng.Intn(g.Vertices))
	}
	return out
}

// Adjacency returns the adjacency list of vertex v, including reverse
// edges when Symmetric (approximated by mirroring a deterministic subset:
// v also links back to the vertices that deterministically chose v via a
// coarse inverse sample). For simulation purposes the undirected variant
// simply adds each vertex's own out-list in both roles at message time,
// so Adjacency returns the out-list; Symmetric affects message emission.
func (g GraphSpec) Adjacency(v int64) []int64 { return g.Neighbors(v) }

// PointsSpec describes labeled classification data (Criteo/HiBench
// stand-in for LR and GBT).
type PointsSpec struct {
	Seed int64
	N    int
	Dim  int
	// Noise is the label-flip probability.
	Noise float64
}

// trueWeights derives the generating hyperplane from the seed.
func (p PointsSpec) trueWeights() []float64 {
	rng := rngFor(p.Seed, -1)
	w := make([]float64, p.Dim)
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	return w
}

// Point returns feature vector and label (0 or 1) of point i.
func (p PointsSpec) Point(i int64) ([]float64, float64) {
	rng := rngFor(p.Seed, i)
	x := make([]float64, p.Dim)
	for d := range x {
		x[d] = rng.NormFloat64()
	}
	w := p.trueWeights()
	dot := 0.0
	for d := range x {
		dot += w[d] * x[d]
	}
	label := 0.0
	if dot > 0 {
		label = 1.0
	}
	if rng.Float64() < p.Noise {
		label = 1 - label
	}
	return x, label
}

// ClusterSpec describes uniform clustering data (HiBench KMeans uses a
// uniform distribution, which the paper notes yields small partition
// skew).
type ClusterSpec struct {
	Seed int64
	N    int
	Dim  int
	K    int
	// Spread is the cluster standard deviation around centers placed on
	// a lattice.
	Spread float64
}

// Center returns the generating center of cluster c.
func (c ClusterSpec) Center(cluster int) []float64 {
	rng := rngFor(c.Seed, int64(-2-cluster))
	ctr := make([]float64, c.Dim)
	for d := range ctr {
		ctr[d] = rng.Float64() * 100
	}
	return ctr
}

// Point returns point i's coordinates and its generating cluster.
func (c ClusterSpec) Point(i int64) ([]float64, int) {
	rng := rngFor(c.Seed, i)
	cluster := int(i) % c.K
	ctr := c.Center(cluster)
	x := make([]float64, c.Dim)
	for d := range x {
		x[d] = ctr[d] + rng.NormFloat64()*c.Spread
	}
	return x, cluster
}

// BlobSpec describes opaque byte payloads for storage soak tests: N
// blobs of roughly BlobBytes each, deterministic per (seed, id). The
// content is incompressible pseudo-random bytes so that encoded size
// tracks the analytic estimate and real-bytes runs move genuine data
// volumes — sized to exceed cluster memory, they force the spill and
// reload paths to touch actual files.
type BlobSpec struct {
	Seed int64
	N    int
	// BlobBytes is the mean payload size; actual sizes vary ±25% so
	// blocks are not all identical.
	BlobBytes int
}

// Size returns blob i's payload size in bytes.
func (b BlobSpec) Size(i int64) int {
	if b.BlobBytes <= 0 {
		return 0
	}
	// Deterministic ±25% jitter around the mean, never below 1 byte.
	j := float64(mix64(uint64(b.Seed)^mix64(uint64(i)))%1000)/1000.0 - 0.5
	n := int(float64(b.BlobBytes) * (1 + j/2))
	if n < 1 {
		n = 1
	}
	return n
}

// Blob returns blob i's payload, generated with splitmix64 so it is
// cheap, deterministic, and incompressible.
func (b BlobSpec) Blob(i int64) []byte {
	n := b.Size(i)
	out := make([]byte, n)
	state := mix64(uint64(b.Seed) ^ mix64(uint64(i)) ^ 0xb10bb10bb10bb10b)
	for off := 0; off < n; off += 8 {
		state += 0x9e3779b97f4a7c15
		w := mix64(state)
		for k := 0; k < 8 && off+k < n; k++ {
			out[off+k] = byte(w >> (8 * k))
		}
	}
	return out
}

// RatingsSpec describes user×item ratings (SVD++ input).
type RatingsSpec struct {
	Seed         int64
	Users        int
	Items        int
	ItemsPerUser int
}

// UserRatings returns the items user u rated and the ratings (1..5).
// A few latent user/item factors generate the ratings so that matrix
// factorization can actually recover structure.
func (r RatingsSpec) UserRatings(u int64) (items []int64, ratings []float64) {
	rng := rngFor(r.Seed, u)
	n := r.ItemsPerUser/2 + rng.Intn(r.ItemsPerUser+1)
	items = make([]int64, n)
	ratings = make([]float64, n)
	uf := float64(mix64(uint64(u))%1000)/1000.0*2 - 1
	for i := range items {
		item := int64(rng.Intn(r.Items))
		items[i] = item
		itf := float64(mix64(uint64(item)^0x9e37)%1000)/1000.0*2 - 1
		score := 3 + 1.5*uf*itf + rng.NormFloat64()*0.3
		if score < 1 {
			score = 1
		}
		if score > 5 {
			score = 5
		}
		ratings[i] = score
	}
	return items, ratings
}
