package datagen

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGraphDeterministic(t *testing.T) {
	g := GraphSpec{Seed: 42, Vertices: 1000, AvgDegree: 8}
	a := g.Neighbors(17)
	b := g.Neighbors(17)
	if len(a) != len(b) {
		t.Fatal("non-deterministic degree")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("non-deterministic neighbors")
		}
	}
	if len(a) != g.OutDegree(17) {
		t.Fatalf("neighbors length %d != degree %d", len(a), g.OutDegree(17))
	}
}

func TestGraphDegreeDistribution(t *testing.T) {
	g := GraphSpec{Seed: 7, Vertices: 5000, AvgDegree: 8}
	total, maxDeg := 0, 0
	for v := int64(0); v < 5000; v++ {
		d := g.OutDegree(v)
		if d < 1 {
			t.Fatalf("degree %d < 1", d)
		}
		total += d
		if d > maxDeg {
			maxDeg = d
		}
	}
	mean := float64(total) / 5000
	if mean < 4 || mean > 16 {
		t.Fatalf("mean degree %v too far from requested 8", mean)
	}
	// Power-law: the max must dwarf the mean (skew that causes Fig. 3).
	if float64(maxDeg) < 5*mean {
		t.Fatalf("max degree %d shows no skew (mean %v)", maxDeg, mean)
	}
}

func TestGraphNeighborsInRange(t *testing.T) {
	g := GraphSpec{Seed: 3, Vertices: 100, AvgDegree: 4}
	f := func(v uint16) bool {
		for _, n := range g.Neighbors(int64(v) % 100) {
			if n < 0 || n >= 100 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPointsSeparable(t *testing.T) {
	p := PointsSpec{Seed: 5, N: 2000, Dim: 10, Noise: 0}
	w := p.trueWeights()
	correct := 0
	for i := int64(0); i < 2000; i++ {
		x, y := p.Point(i)
		if len(x) != 10 {
			t.Fatalf("dim = %d", len(x))
		}
		dot := 0.0
		for d := range x {
			dot += w[d] * x[d]
		}
		pred := 0.0
		if dot > 0 {
			pred = 1
		}
		if pred == y {
			correct++
		}
	}
	if correct != 2000 {
		t.Fatalf("noise-free points must be separable by the true weights: %d/2000", correct)
	}
}

func TestPointsNoiseFlipsSome(t *testing.T) {
	p := PointsSpec{Seed: 5, N: 2000, Dim: 10, Noise: 0.3}
	w := p.trueWeights()
	flipped := 0
	for i := int64(0); i < 2000; i++ {
		x, y := p.Point(i)
		dot := 0.0
		for d := range x {
			dot += w[d] * x[d]
		}
		pred := 0.0
		if dot > 0 {
			pred = 1
		}
		if pred != y {
			flipped++
		}
	}
	if flipped < 400 || flipped > 800 {
		t.Fatalf("30%% noise should flip ≈600/2000 labels, flipped %d", flipped)
	}
}

func TestClusterPointsNearCenters(t *testing.T) {
	c := ClusterSpec{Seed: 9, N: 1000, Dim: 4, K: 5, Spread: 1.0}
	for i := int64(0); i < 1000; i++ {
		x, cl := c.Point(i)
		ctr := c.Center(cl)
		dist := 0.0
		for d := range x {
			dist += (x[d] - ctr[d]) * (x[d] - ctr[d])
		}
		if math.Sqrt(dist) > 10 {
			t.Fatalf("point %d is %v away from its center", i, math.Sqrt(dist))
		}
	}
}

func TestRatingsValidRange(t *testing.T) {
	r := RatingsSpec{Seed: 11, Users: 500, Items: 100, ItemsPerUser: 10}
	totalRatings := 0
	for u := int64(0); u < 500; u++ {
		items, ratings := r.UserRatings(u)
		if len(items) != len(ratings) {
			t.Fatal("items/ratings length mismatch")
		}
		totalRatings += len(items)
		for i := range items {
			if items[i] < 0 || items[i] >= 100 {
				t.Fatalf("item %d out of range", items[i])
			}
			if ratings[i] < 1 || ratings[i] > 5 {
				t.Fatalf("rating %v out of range", ratings[i])
			}
		}
	}
	if totalRatings < 500*5 {
		t.Fatalf("too few ratings: %d", totalRatings)
	}
}

func TestRatingsDeterministic(t *testing.T) {
	r := RatingsSpec{Seed: 11, Users: 10, Items: 50, ItemsPerUser: 5}
	i1, r1 := r.UserRatings(3)
	i2, r2 := r.UserRatings(3)
	for k := range i1 {
		if i1[k] != i2[k] || r1[k] != r2[k] {
			t.Fatal("ratings not deterministic")
		}
	}
}

func TestBlobSpecDeterministicAndSized(t *testing.T) {
	spec := BlobSpec{Seed: 9, N: 64, BlobBytes: 4096}
	var total int
	for i := int64(0); i < int64(spec.N); i++ {
		b1 := spec.Blob(i)
		b2 := spec.Blob(i)
		if len(b1) != spec.Size(i) {
			t.Fatalf("blob %d: len %d != Size %d", i, len(b1), spec.Size(i))
		}
		if string(b1) != string(b2) {
			t.Fatalf("blob %d not deterministic", i)
		}
		// ±25% jitter band around the mean.
		if len(b1) < spec.BlobBytes*3/4 || len(b1) > spec.BlobBytes*5/4 {
			t.Fatalf("blob %d size %d outside ±25%% of %d", i, len(b1), spec.BlobBytes)
		}
		total += len(b1)
	}
	mean := total / spec.N
	if mean < spec.BlobBytes*9/10 || mean > spec.BlobBytes*11/10 {
		t.Fatalf("mean blob size %d drifted from %d", mean, spec.BlobBytes)
	}
	// Different seeds and ids produce different payloads.
	if string(spec.Blob(1)) == string(spec.Blob(2)) {
		t.Fatal("distinct ids produced identical blobs")
	}
	other := BlobSpec{Seed: 10, N: 64, BlobBytes: 4096}
	if string(spec.Blob(1)) == string(other.Blob(1)) {
		t.Fatal("distinct seeds produced identical blobs")
	}
	if (BlobSpec{}).Size(3) != 0 {
		t.Fatal("zero BlobBytes must yield zero size")
	}
}
