package shuffle

// Checkpoint support: Snapshot captures the complete shuffle state —
// every output's bucket contents, byte counts, producing executors and
// seal status — and Restore rebuilds a Service from one. Record slices
// are shared, not deep-copied: snapshots are taken at window boundaries
// in driver context and serialized immediately, and restored services
// never mutate bucket contents in place (invalidation nils whole map
// entries).

import (
	"sort"

	"blaze/internal/dataflow"
)

// MapSnapshot is one map task's output in a Snapshot. Present
// distinguishes a recorded output from a missing (nil) entry.
type MapSnapshot struct {
	Present  bool
	Executor int
	Buckets  [][]dataflow.Record
	Bytes    []int64
}

// OutputSnapshot is one shuffle's state in a Snapshot.
type OutputSnapshot struct {
	ID         int
	NumBuckets int
	Sealed     bool
	Maps       []MapSnapshot
}

// Snapshot is the serializable state of a shuffle Service.
type Snapshot struct {
	TotalWritten int64
	Outputs      []OutputSnapshot
}

// Snapshot captures the service's current state, outputs sorted by id
// for determinism.
func (s *Service) Snapshot() *Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := &Snapshot{TotalWritten: s.totalWritten}
	ids := make([]int, 0, len(s.outputs))
	for id := range s.outputs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		o := s.outputs[id]
		os := OutputSnapshot{ID: id, NumBuckets: o.numBuckets, Sealed: o.sealed, Maps: make([]MapSnapshot, len(o.maps))}
		for i, m := range o.maps {
			if m == nil {
				continue
			}
			os.Maps[i] = MapSnapshot{Present: true, Executor: m.executor, Buckets: m.allBuckets(), Bytes: m.bytes}
		}
		snap.Outputs = append(snap.Outputs, os)
	}
	return snap
}

// Restore replaces the service's state with the snapshot's.
func (s *Service) Restore(snap *Snapshot) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.totalWritten = snap.TotalWritten
	s.outputs = make(map[int]*output, len(snap.Outputs))
	for _, os := range snap.Outputs {
		o := &output{numBuckets: os.NumBuckets, sealed: os.Sealed, maps: make([]*mapOutput, len(os.Maps))}
		for i, m := range os.Maps {
			if !m.Present {
				continue
			}
			o.maps[i] = &mapOutput{buckets: m.Buckets, bytes: m.Bytes, executor: m.Executor}
		}
		s.outputs[os.ID] = o
	}
}
