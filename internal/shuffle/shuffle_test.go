package shuffle

import (
	"reflect"
	"testing"

	"blaze/internal/dataflow"
)

func recs(keys ...int64) []dataflow.Record {
	out := make([]dataflow.Record, len(keys))
	for i, k := range keys {
		out[i] = dataflow.Record{Key: k, Value: k}
	}
	return out
}

func TestWriteFetchLifecycle(t *testing.T) {
	s := NewService()
	s.Ensure(1, 2, 2)
	s.Ensure(1, 2, 2) // idempotent
	if s.Complete(1) {
		t.Fatal("shuffle should not be complete before MarkComplete")
	}
	if got := s.MissingMaps(1); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Fatalf("missing maps = %v, want [0 1]", got)
	}
	if err := s.SetMapOutput(1, 0, 0, [][]dataflow.Record{recs(1, 2), recs(4)}, []int64{100, 25}); err != nil {
		t.Fatal(err)
	}
	s.MarkComplete(1) // no-op: map 1 still missing
	if s.Complete(1) {
		t.Fatal("shuffle must not seal while map outputs are missing")
	}
	if err := s.SetMapOutput(1, 1, 1, [][]dataflow.Record{recs(3), nil}, []int64{50, 0}); err != nil {
		t.Fatal(err)
	}
	s.MarkComplete(1)
	if !s.Complete(1) {
		t.Fatal("shuffle should be complete")
	}
	// Bucket 0 concatenates map outputs in map-partition order.
	got, bytes, err := s.Fetch(1, 0)
	if err != nil || bytes != 150 {
		t.Fatalf("fetch bucket 0: %d bytes, err=%v", bytes, err)
	}
	if want := recs(1, 2, 3); !reflect.DeepEqual(got, want) {
		t.Fatalf("fetch bucket 0 = %v, want %v", got, want)
	}
	if s.TotalWritten() != 175 {
		t.Fatalf("total written = %d, want 175", s.TotalWritten())
	}
}

func TestFetchIncompleteErrors(t *testing.T) {
	s := NewService()
	if _, _, err := s.Fetch(9, 0); err == nil {
		t.Fatal("fetch of unknown shuffle should error")
	}
	s.Ensure(9, 1, 1)
	if _, _, err := s.Fetch(9, 0); err == nil {
		t.Fatal("fetch before completion should error")
	}
}

func TestSetMapOutputErrors(t *testing.T) {
	s := NewService()
	if err := s.SetMapOutput(5, 0, 0, [][]dataflow.Record{recs(1)}, []int64{10}); err == nil {
		t.Fatal("write to unprepared shuffle should error")
	}
	s.Ensure(5, 1, 2)
	if err := s.SetMapOutput(5, 7, 0, [][]dataflow.Record{recs(1)}, []int64{10}); err == nil {
		t.Fatal("write to out-of-range map partition should error")
	}
	if err := s.SetMapOutput(5, 0, 0, [][]dataflow.Record{recs(1), recs(2)}, []int64{10, 20}); err == nil {
		t.Fatal("write with wrong bucket count should error")
	}
	if err := s.SetMapOutput(5, 0, 0, [][]dataflow.Record{recs(1)}, []int64{10}); err != nil {
		t.Fatal(err)
	}
	if err := s.SetMapOutput(5, 0, 0, [][]dataflow.Record{recs(1)}, []int64{10}); err == nil {
		t.Fatal("duplicate map output should error")
	}
	if err := s.SetMapOutput(5, 1, 0, [][]dataflow.Record{recs(2)}, []int64{10}); err != nil {
		t.Fatal(err)
	}
	s.MarkComplete(5)
	if err := s.SetMapOutput(5, 0, 0, [][]dataflow.Record{recs(3)}, []int64{10}); err == nil {
		t.Fatal("writes after completion should error")
	}
}

func TestCleanForcesRegeneration(t *testing.T) {
	s := NewService()
	s.Ensure(3, 1, 1)
	if err := s.SetMapOutput(3, 0, 0, [][]dataflow.Record{recs(1)}, []int64{10}); err != nil {
		t.Fatal(err)
	}
	s.MarkComplete(3)
	s.Clean(3)
	if s.Complete(3) {
		t.Fatal("cleaned shuffle must not be complete")
	}
	// Regeneration path: Ensure again and rewrite.
	s.Ensure(3, 1, 1)
	if got := s.MissingMaps(3); !reflect.DeepEqual(got, []int{0}) {
		t.Fatalf("missing maps after clean = %v, want [0]", got)
	}
	if err := s.SetMapOutput(3, 0, 0, [][]dataflow.Record{recs(2)}, []int64{20}); err != nil {
		t.Fatal(err)
	}
	s.MarkComplete(3)
	got, _, err := s.Fetch(3, 0)
	if err != nil || len(got) != 1 || got[0].Key != 2 {
		t.Fatalf("regenerated fetch = %v, %v", got, err)
	}
}

// fill writes maps 0..maps-1 of a shuffle with buckets of 10 bytes each,
// assigning map m to executor m%execs.
func fill(t *testing.T, s *Service, id, buckets, maps, execs int) {
	t.Helper()
	s.Ensure(id, buckets, maps)
	for m := 0; m < maps; m++ {
		bs := make([][]dataflow.Record, buckets)
		bytes := make([]int64, buckets)
		for b := range bs {
			bs[b] = recs(int64(m*buckets + b))
			bytes[b] = 10
		}
		if err := s.SetMapOutput(id, m, m%execs, bs, bytes); err != nil {
			t.Fatal(err)
		}
	}
	s.MarkComplete(id)
}

func TestLoseBucketInvalidatesOnlyProducer(t *testing.T) {
	s := NewService()
	fill(t, s, 1, 3, 4, 2)
	bytes, ok := s.LoseBucket(1, 2, 1)
	if !ok || bytes != 10 {
		t.Fatalf("LoseBucket = %d, %v; want 10, true", bytes, ok)
	}
	if s.Complete(1) {
		t.Fatal("shuffle must unseal on bucket loss")
	}
	if got := s.MissingMaps(1); !reflect.DeepEqual(got, []int{2}) {
		t.Fatalf("missing maps = %v, want [2] (only the producing map)", got)
	}
	// Unknown shuffle, out-of-range map/bucket, already-missing map.
	if _, ok := s.LoseBucket(9, 0, 0); ok {
		t.Fatal("losing a bucket of an unknown shuffle should fail")
	}
	if _, ok := s.LoseBucket(1, 9, 0); ok {
		t.Fatal("losing an out-of-range map should fail")
	}
	if _, ok := s.LoseBucket(1, 0, 9); ok {
		t.Fatal("losing an out-of-range bucket should fail")
	}
	if _, ok := s.LoseBucket(1, 2, 0); ok {
		t.Fatal("losing a bucket of an already-missing map should fail")
	}
	// Rewriting the lost map reseals and restores fetches.
	bs := make([][]dataflow.Record, 3)
	bytes2 := make([]int64, 3)
	for b := range bs {
		bs[b] = recs(int64(100 + b))
		bytes2[b] = 10
	}
	if err := s.SetMapOutput(1, 2, 0, bs, bytes2); err != nil {
		t.Fatal(err)
	}
	s.MarkComplete(1)
	if !s.Complete(1) {
		t.Fatal("shuffle should reseal after the lost map is rewritten")
	}
	if _, n, err := s.Fetch(1, 1); err != nil || n != 40 {
		t.Fatalf("fetch after repair: %d bytes, err=%v", n, err)
	}
}

func TestLoseExecutorOutputs(t *testing.T) {
	s := NewService()
	fill(t, s, 1, 2, 4, 2) // maps 0,2 on executor 0; maps 1,3 on executor 1
	fill(t, s, 2, 2, 2, 2) // map 0 on executor 0; map 1 on executor 1
	lost := s.LoseExecutorOutputs(1)
	want := []LostMapOutput{
		{Shuffle: 1, MapPart: 1, Bytes: 20},
		{Shuffle: 1, MapPart: 3, Bytes: 20},
		{Shuffle: 2, MapPart: 1, Bytes: 20},
	}
	if !reflect.DeepEqual(lost, want) {
		t.Fatalf("lost = %v, want %v", lost, want)
	}
	if s.Complete(1) || s.Complete(2) {
		t.Fatal("both shuffles must unseal")
	}
	if got := s.MissingMaps(1); !reflect.DeepEqual(got, []int{1, 3}) {
		t.Fatalf("shuffle 1 missing = %v, want [1 3]", got)
	}
	if got := s.LoseExecutorOutputs(1); len(got) != 0 {
		t.Fatalf("second loss of the same executor = %v, want none", got)
	}
	// Executor 0's outputs are untouched.
	if got := s.LoseExecutorOutputs(0); len(got) != 3 {
		t.Fatalf("executor 0 outputs = %v, want 3 entries", got)
	}
}

func TestBucketRefsAndCompleteIDs(t *testing.T) {
	s := NewService()
	fill(t, s, 4, 2, 2, 1)
	fill(t, s, 7, 1, 1, 1)
	s.Ensure(9, 1, 1) // never completed
	if got := s.CompleteIDs(); !reflect.DeepEqual(got, []int{4, 7}) {
		t.Fatalf("complete ids = %v, want [4 7]", got)
	}
	refs := s.BucketRefs(4)
	want := []BucketRef{
		{MapPart: 0, Bucket: 0, Bytes: 10},
		{MapPart: 0, Bucket: 1, Bytes: 10},
		{MapPart: 1, Bucket: 0, Bytes: 10},
		{MapPart: 1, Bucket: 1, Bytes: 10},
	}
	if !reflect.DeepEqual(refs, want) {
		t.Fatalf("bucket refs = %v, want %v", refs, want)
	}
	if got := s.BucketRefs(99); got != nil {
		t.Fatalf("bucket refs of unknown shuffle = %v, want nil", got)
	}
	// After losing a map, its buckets drop out of the candidate set.
	s.LoseBucket(4, 0, 0)
	if got := s.BucketRefs(4); len(got) != 2 {
		t.Fatalf("bucket refs after loss = %v, want 2 entries", got)
	}
}
