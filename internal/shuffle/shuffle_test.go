package shuffle

import (
	"testing"

	"blaze/internal/dataflow"
)

func recs(keys ...int64) []dataflow.Record {
	out := make([]dataflow.Record, len(keys))
	for i, k := range keys {
		out[i] = dataflow.Record{Key: k, Value: k}
	}
	return out
}

func TestWriteFetchLifecycle(t *testing.T) {
	s := NewService()
	s.Ensure(1, 2)
	s.Ensure(1, 2) // idempotent
	if s.Complete(1) {
		t.Fatal("shuffle should not be complete before MarkComplete")
	}
	if err := s.AddMapOutput(1, 0, recs(1, 2), 100); err != nil {
		t.Fatal(err)
	}
	if err := s.AddMapOutput(1, 0, recs(3), 50); err != nil {
		t.Fatal(err)
	}
	if err := s.AddMapOutput(1, 1, recs(4), 25); err != nil {
		t.Fatal(err)
	}
	s.MarkComplete(1)
	if !s.Complete(1) {
		t.Fatal("shuffle should be complete")
	}
	got, bytes, err := s.Fetch(1, 0)
	if err != nil || len(got) != 3 || bytes != 150 {
		t.Fatalf("fetch bucket 0: %d recs, %d bytes, err=%v", len(got), bytes, err)
	}
	if s.TotalWritten() != 175 {
		t.Fatalf("total written = %d, want 175", s.TotalWritten())
	}
}

func TestFetchIncompleteErrors(t *testing.T) {
	s := NewService()
	if _, _, err := s.Fetch(9, 0); err == nil {
		t.Fatal("fetch of unknown shuffle should error")
	}
	s.Ensure(9, 1)
	if _, _, err := s.Fetch(9, 0); err == nil {
		t.Fatal("fetch before completion should error")
	}
}

func TestAddAfterCompleteErrors(t *testing.T) {
	s := NewService()
	s.Ensure(2, 1)
	s.MarkComplete(2)
	if err := s.AddMapOutput(2, 0, recs(1), 10); err == nil {
		t.Fatal("writes after completion should error")
	}
}

func TestAddWithoutEnsureErrors(t *testing.T) {
	s := NewService()
	if err := s.AddMapOutput(5, 0, recs(1), 10); err == nil {
		t.Fatal("write to unprepared shuffle should error")
	}
}

func TestCleanForcesRegeneration(t *testing.T) {
	s := NewService()
	s.Ensure(3, 1)
	if err := s.AddMapOutput(3, 0, recs(1), 10); err != nil {
		t.Fatal(err)
	}
	s.MarkComplete(3)
	s.Clean(3)
	if s.Complete(3) {
		t.Fatal("cleaned shuffle must not be complete")
	}
	// Regeneration path: Ensure again and rewrite.
	s.Ensure(3, 1)
	if err := s.AddMapOutput(3, 0, recs(2), 20); err != nil {
		t.Fatal(err)
	}
	s.MarkComplete(3)
	got, _, err := s.Fetch(3, 0)
	if err != nil || len(got) != 1 || got[0].Key != 2 {
		t.Fatalf("regenerated fetch = %v, %v", got, err)
	}
}
