// Package shuffle implements the shuffle service: map tasks write
// hash-partitioned (optionally map-side-combined) buckets, reduce tasks
// fetch them. Shuffle outputs persist across jobs like Spark's shuffle
// files — iterative jobs skip already-computed map stages — until the
// producing dataset is released by the driver, at which point the outputs
// are cleaned (Spark's ContextCleaner). A reduce task that finds its
// shuffle cleaned triggers parent-stage regeneration in the engine, which
// is how long recomputation lineages arise across iterations (Fig. 5).
package shuffle

import (
	"fmt"
	"sort"

	"blaze/internal/dataflow"
)

type output struct {
	buckets  [][]dataflow.Record
	bytes    []int64
	complete bool
}

// Service stores shuffle outputs keyed by shuffle id.
type Service struct {
	outputs map[int]*output
	// totalWritten accumulates bytes ever written, for reporting.
	totalWritten int64
}

// NewService creates an empty shuffle service.
func NewService() *Service {
	return &Service{outputs: make(map[int]*output)}
}

// Ensure prepares bucket storage for a shuffle with the given reduce-side
// partition count. Calling it again with the same id is a no-op.
func (s *Service) Ensure(shuffleID, buckets int) {
	if _, ok := s.outputs[shuffleID]; ok {
		return
	}
	s.outputs[shuffleID] = &output{
		buckets: make([][]dataflow.Record, buckets),
		bytes:   make([]int64, buckets),
	}
}

// AddMapOutput appends one map task's records for one bucket.
func (s *Service) AddMapOutput(shuffleID, bucket int, recs []dataflow.Record, bytes int64) error {
	o, ok := s.outputs[shuffleID]
	if !ok {
		return fmt.Errorf("shuffle: shuffle %d not prepared", shuffleID)
	}
	if o.complete {
		return fmt.Errorf("shuffle: shuffle %d already complete", shuffleID)
	}
	o.buckets[bucket] = append(o.buckets[bucket], recs...)
	o.bytes[bucket] += bytes
	s.totalWritten += bytes
	return nil
}

// MarkComplete seals the shuffle after its map stage finishes.
func (s *Service) MarkComplete(shuffleID int) {
	if o, ok := s.outputs[shuffleID]; ok {
		o.complete = true
	}
}

// Complete reports whether the shuffle's outputs are available.
func (s *Service) Complete(shuffleID int) bool {
	o, ok := s.outputs[shuffleID]
	return ok && o.complete
}

// Fetch returns the records and byte size of one reduce bucket.
func (s *Service) Fetch(shuffleID, bucket int) ([]dataflow.Record, int64, error) {
	o, ok := s.outputs[shuffleID]
	if !ok || !o.complete {
		return nil, 0, fmt.Errorf("shuffle: shuffle %d not complete", shuffleID)
	}
	return o.buckets[bucket], o.bytes[bucket], nil
}

// Clean removes a shuffle's outputs; subsequent fetches force
// regeneration.
func (s *Service) Clean(shuffleID int) {
	delete(s.outputs, shuffleID)
}

// CompleteIDs lists the ids of all complete shuffles in ascending order,
// for deterministic enumeration by the fault injector.
func (s *Service) CompleteIDs() []int {
	var ids []int
	for id, o := range s.outputs {
		if o.complete {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	return ids
}

// TotalWritten reports cumulative shuffle bytes written.
func (s *Service) TotalWritten() int64 { return s.totalWritten }
