// Package shuffle implements the shuffle service: map tasks write
// hash-partitioned (optionally map-side-combined) buckets, reduce tasks
// fetch them. Shuffle outputs persist across jobs like Spark's shuffle
// files — iterative jobs skip already-computed map stages — until the
// producing dataset is released by the driver, at which point the outputs
// are cleaned (Spark's ContextCleaner). A reduce task that finds its
// shuffle cleaned triggers parent-stage regeneration in the engine, which
// is how long recomputation lineages arise across iterations (Fig. 5).
//
// Outputs are tracked per map task, mirroring Spark's map-output files:
// each map partition owns one set of reduce buckets, tagged with the
// executor that produced it. That granularity is what enables partial
// recovery — losing a single bucket (or every output of a dead executor)
// invalidates only the producing map tasks, and the engine re-runs
// exactly those instead of the whole map stage.
package shuffle

import (
	"fmt"
	"sort"
	"sync"

	"blaze/internal/dataflow"
)

// mapOutput is one map task's contribution: one bucket of records and a
// byte count per reduce bucket, tagged with the producing executor. A
// bucket is stored either as a row slice (buckets) or as a columnar
// batch (batches) depending on which task loop produced it; both
// representations are equivalent and convert on demand at fetch time, so
// row and vectorized stages interoperate freely within one run.
type mapOutput struct {
	buckets  [][]dataflow.Record
	batches  []*dataflow.Batch
	bytes    []int64
	executor int
}

// bucketRecords returns one bucket in row form, boxing a batch-stored
// bucket on demand.
func (m *mapOutput) bucketRecords(b int) []dataflow.Record {
	if m.batches != nil {
		if bb := m.batches[b]; bb != nil {
			return bb.Records()
		}
		return nil
	}
	return m.buckets[b]
}

// allBuckets returns every bucket in row form, for snapshotting.
func (m *mapOutput) allBuckets() [][]dataflow.Record {
	if m.batches == nil {
		return m.buckets
	}
	out := make([][]dataflow.Record, len(m.batches))
	for b := range m.batches {
		out[b] = m.bucketRecords(b)
	}
	return out
}

type output struct {
	numBuckets int
	// router is the memoized bucket router for this shuffle's reduce
	// side, built once in Ensure.
	router dataflow.Router
	// maps is indexed by map partition; nil entries are missing (never
	// written, or invalidated by a fault).
	maps []*mapOutput
	// sealed is set by MarkComplete once every map output is present and
	// cleared again when any of them is invalidated.
	sealed bool
}

func (o *output) allPresent() bool {
	for _, m := range o.maps {
		if m == nil {
			return false
		}
	}
	return true
}

// Service stores shuffle outputs keyed by shuffle id. All methods are
// safe for concurrent use: map tasks of a parallel stage write their
// outputs (SetMapOutput) and reduce tasks fetch completed buckets
// concurrently. Structural transitions — Ensure, MarkComplete, Clean and
// the fault-loss operations — are only ever issued from the driver
// between tasks, so a shuffle's completeness is stable while a stage's
// tasks are in flight.
type Service struct {
	mu      sync.Mutex
	outputs map[int]*output
	// totalWritten accumulates bytes ever written, for reporting.
	totalWritten int64
}

// NewService creates an empty shuffle service.
func NewService() *Service {
	return &Service{outputs: make(map[int]*output)}
}

// Ensure prepares storage for a shuffle with the given reduce-side bucket
// count and map-side task count. Calling it again with the same id is a
// no-op.
func (s *Service) Ensure(shuffleID, buckets, maps int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.outputs[shuffleID]; ok {
		return
	}
	s.outputs[shuffleID] = &output{
		numBuckets: buckets,
		router:     dataflow.NewRouter(buckets),
		maps:       make([]*mapOutput, maps),
	}
}

// checkSet validates a map-output write under s.mu.
func (s *Service) checkSet(shuffleID, mapPart, nBuckets, nBytes int) (*output, error) {
	o, ok := s.outputs[shuffleID]
	if !ok {
		return nil, fmt.Errorf("shuffle: shuffle %d not prepared", shuffleID)
	}
	if mapPart < 0 || mapPart >= len(o.maps) {
		return nil, fmt.Errorf("shuffle: shuffle %d has no map partition %d", shuffleID, mapPart)
	}
	if o.sealed {
		return nil, fmt.Errorf("shuffle: shuffle %d already complete", shuffleID)
	}
	if o.maps[mapPart] != nil {
		return nil, fmt.Errorf("shuffle: shuffle %d map output %d already present", shuffleID, mapPart)
	}
	if nBuckets != o.numBuckets || nBytes != o.numBuckets {
		return nil, fmt.Errorf("shuffle: shuffle %d expects %d buckets, got %d", shuffleID, o.numBuckets, nBuckets)
	}
	return o, nil
}

// SetMapOutput stores one map task's complete bucket set, replacing
// nothing: the map output must be currently missing (fresh or
// invalidated), which is exactly the set of tasks the engine re-runs.
func (s *Service) SetMapOutput(shuffleID, mapPart, executor int, buckets [][]dataflow.Record, bytes []int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	o, err := s.checkSet(shuffleID, mapPart, len(buckets), len(bytes))
	if err != nil {
		return err
	}
	o.maps[mapPart] = &mapOutput{buckets: buckets, bytes: bytes, executor: executor}
	for _, b := range bytes {
		s.totalWritten += b
	}
	return nil
}

// SetMapOutputBatch stores one map task's bucket set in columnar form,
// with the same replacement rules as SetMapOutput. The service retains
// the batches (they are never pool-released), so the caller must hand
// over ownership.
func (s *Service) SetMapOutputBatch(shuffleID, mapPart, executor int, batches []*dataflow.Batch, bytes []int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	o, err := s.checkSet(shuffleID, mapPart, len(batches), len(bytes))
	if err != nil {
		return err
	}
	o.maps[mapPart] = &mapOutput{batches: batches, bytes: bytes, executor: executor}
	for _, b := range bytes {
		s.totalWritten += b
	}
	return nil
}

// MarkComplete seals the shuffle after its map stage finishes. It is a
// no-op while map outputs are still missing.
func (s *Service) MarkComplete(shuffleID int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if o, ok := s.outputs[shuffleID]; ok && o.allPresent() {
		o.sealed = true
	}
}

// Complete reports whether the shuffle's outputs are all available.
func (s *Service) Complete(shuffleID int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	o, ok := s.outputs[shuffleID]
	return ok && o.sealed
}

// MissingMaps lists the map partitions whose outputs are absent, in
// ascending order — the exact task set a (re-)run of the map stage must
// execute. An unknown shuffle has no entry; Ensure it first.
func (s *Service) MissingMaps(shuffleID int) []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	o, ok := s.outputs[shuffleID]
	if !ok {
		return nil
	}
	var out []int
	for m, mo := range o.maps {
		if mo == nil {
			out = append(out, m)
		}
	}
	return out
}

// Fetch returns the records and byte size of one reduce bucket,
// concatenating map outputs in map-partition order (the order the
// original sequential task execution produced).
func (s *Service) Fetch(shuffleID, bucket int) ([]dataflow.Record, int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	o, ok := s.outputs[shuffleID]
	if !ok || !o.sealed {
		return nil, 0, fmt.Errorf("shuffle: shuffle %d not complete", shuffleID)
	}
	var recs []dataflow.Record
	var bytes int64
	for _, mo := range o.maps {
		recs = append(recs, mo.bucketRecords(bucket)...)
		bytes += mo.bytes[bucket]
	}
	return recs, bytes, nil
}

// FetchBatch returns one reduce bucket in columnar form, concatenating
// map outputs in map-partition order exactly like Fetch. Batch-stored
// buckets copy column storage directly; row-stored buckets box in. The
// returned batch is fresh and owned by the caller. NonNil mirrors
// Fetch's result: nil only when no records were appended.
func (s *Service) FetchBatch(shuffleID, bucket int) (*dataflow.Batch, int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	o, ok := s.outputs[shuffleID]
	if !ok || !o.sealed {
		return nil, 0, fmt.Errorf("shuffle: shuffle %d not complete", shuffleID)
	}
	total := 0
	for _, mo := range o.maps {
		if mo.batches != nil {
			total += mo.batches[bucket].Len()
		} else {
			total += len(mo.buckets[bucket])
		}
	}
	out := dataflow.NewBatch(total)
	var bytes int64
	for _, mo := range o.maps {
		bytes += mo.bytes[bucket]
		if mo.batches != nil {
			bb := mo.batches[bucket]
			for i := 0; i < bb.Len(); i++ {
				out.AppendFromBatch(bb, i)
			}
		} else {
			for _, r := range mo.buckets[bucket] {
				out.Append(r.Key, r.Value)
			}
		}
	}
	out.NonNil = out.Len() > 0
	return out, bytes, nil
}

// Router returns the memoized key router for a prepared shuffle, so the
// per-record route loop skips both construction and the modulo divide.
func (s *Service) Router(shuffleID int) (dataflow.Router, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	o, ok := s.outputs[shuffleID]
	if !ok {
		return dataflow.Router{}, false
	}
	return o.router, true
}

// Clean removes a shuffle's outputs entirely; subsequent fetches force
// regeneration of every map task.
func (s *Service) Clean(shuffleID int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.outputs, shuffleID)
}

// LostMapOutput identifies one invalidated map output and the bytes it
// held across all buckets.
type LostMapOutput struct {
	Shuffle int
	MapPart int
	Bytes   int64
}

// LoseBucket invalidates a single map-output bucket (the analogue of one
// lost shuffle file, shuffle_mapPart_bucket). The producing map task must
// re-run — a re-run rewrites all of its buckets — so the whole map output
// is marked missing; the returned bytes are the lost bucket's alone.
func (s *Service) LoseBucket(shuffleID, mapPart, bucket int) (int64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	o, ok := s.outputs[shuffleID]
	if !ok || mapPart < 0 || mapPart >= len(o.maps) || o.maps[mapPart] == nil {
		return 0, false
	}
	if bucket < 0 || bucket >= o.numBuckets {
		return 0, false
	}
	bytes := o.maps[mapPart].bytes[bucket]
	o.maps[mapPart] = nil
	o.sealed = false
	return bytes, true
}

// LoseExecutorOutputs invalidates every map output the executor produced
// — its map-output files die with it — and returns what was lost, in
// (shuffle, map partition) ascending order.
func (s *Service) LoseExecutorOutputs(executor int) []LostMapOutput {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]int, 0, len(s.outputs))
	for id := range s.outputs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var lost []LostMapOutput
	for _, id := range ids {
		o := s.outputs[id]
		for m, mo := range o.maps {
			if mo == nil || mo.executor != executor {
				continue
			}
			var bytes int64
			for _, b := range mo.bytes {
				bytes += b
			}
			o.maps[m] = nil
			o.sealed = false
			lost = append(lost, LostMapOutput{Shuffle: id, MapPart: m, Bytes: bytes})
		}
	}
	return lost
}

// BucketRef names one present map-output bucket.
type BucketRef struct {
	MapPart int
	Bucket  int
	Bytes   int64
}

// BucketRefs lists the present non-empty map-output buckets of a shuffle
// in (map partition, bucket) ascending order — the candidate set for
// bucket-loss injection.
func (s *Service) BucketRefs(shuffleID int) []BucketRef {
	s.mu.Lock()
	defer s.mu.Unlock()
	o, ok := s.outputs[shuffleID]
	if !ok {
		return nil
	}
	var refs []BucketRef
	for m, mo := range o.maps {
		if mo == nil {
			continue
		}
		for b, bytes := range mo.bytes {
			if bytes > 0 {
				refs = append(refs, BucketRef{MapPart: m, Bucket: b, Bytes: bytes})
			}
		}
	}
	return refs
}

// CompleteIDs lists the ids of all complete shuffles in ascending order,
// for deterministic enumeration by the fault injector.
func (s *Service) CompleteIDs() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	var ids []int
	for id, o := range s.outputs {
		if o.sealed {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	return ids
}

// TotalWritten reports cumulative shuffle bytes written.
func (s *Service) TotalWritten() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.totalWritten
}
