// Package enginetest provides the random dataflow program generator used
// by the equivalence property tests: random DAGs of sources, maps,
// filters, reduces, zips and joins with random cache annotations,
// releases and actions, deterministic per seed. Every caching system must
// compute exactly the checksums the reference evaluator computes on the
// same seed — under arbitrary eviction pressure and failure injection.
package enginetest

import (
	"fmt"
	"math/rand"

	"blaze/internal/dataflow"
)

// BuildRandomProgram constructs and executes a random dataflow program on
// the context (whose runner must already be attached) and returns the
// checksums of every action's results, in action order.
func BuildRandomProgram(seed int64, ctx *dataflow.Context) []int64 {
	rng := rand.New(rand.NewSource(seed))
	const parts = 4
	var pool []*dataflow.Dataset

	mk := func(i int) *dataflow.Dataset {
		n := 20 + rng.Intn(60)
		base := rng.Int63n(1000)
		return ctx.Source(fmt.Sprintf("src%d@0", i), parts, func(part int) []dataflow.Record {
			var out []dataflow.Record
			for k := part; k < n; k += parts {
				out = append(out, dataflow.Record{Key: base + int64(k), Value: int64(k)})
			}
			return out
		})
	}
	for i := 0; i < 2+rng.Intn(2); i++ {
		pool = append(pool, mk(i))
	}

	var checksums []int64
	collect := func(d *dataflow.Dataset) {
		var sum int64
		for _, part := range d.Collect() {
			for _, r := range part {
				sum += r.Key * 31
				if v, ok := r.Value.(int64); ok {
					sum += v
				}
			}
		}
		checksums = append(checksums, sum)
	}

	steps := 6 + rng.Intn(8)
	for s := 0; s < steps; s++ {
		pick := pool[rng.Intn(len(pool))]
		var next *dataflow.Dataset
		switch rng.Intn(7) {
		case 0:
			next = pick.Map(fmt.Sprintf("map%d@%d", s, s), func(r dataflow.Record) dataflow.Record {
				return dataflow.Record{Key: r.Key, Value: r.Value.(int64) + 1}
			})
		case 1:
			next = pick.Filter(fmt.Sprintf("filter%d@%d", s, s), func(r dataflow.Record) bool {
				return r.Key%3 != 0
			})
		case 2:
			next = pick.ReduceByKey(fmt.Sprintf("reduce%d@%d", s, s), parts, func(a, b any) any {
				return a.(int64) + b.(int64)
			})
		case 3:
			other := pool[rng.Intn(len(pool))]
			if other.Partitions() == pick.Partitions() {
				next = dataflow.Zip(fmt.Sprintf("zip%d@%d", s, s), dataflow.OpLight, pick, other,
					func(_ int, l, r []dataflow.Record) []dataflow.Record {
						out := append([]dataflow.Record(nil), l...)
						for _, rec := range r {
							out = append(out, dataflow.Record{Key: rec.Key + 1, Value: rec.Value})
						}
						return out
					})
			} else {
				next = pick.Map(fmt.Sprintf("map%d@%d", s, s), func(r dataflow.Record) dataflow.Record { return r })
			}
		case 4:
			other := pool[rng.Intn(len(pool))]
			next = dataflow.ShuffleJoin(fmt.Sprintf("join%d@%d", s, s), parts, pick, other,
				func(_ int, l, r []dataflow.Record) []dataflow.Record {
					keys := map[int64]bool{}
					for _, rec := range r {
						keys[rec.Key] = true
					}
					var out []dataflow.Record
					for _, rec := range l {
						if keys[rec.Key] {
							out = append(out, rec)
						}
					}
					return out
				})
		case 5:
			next = pick.GroupByKey(fmt.Sprintf("group%d@%d", s, s), parts).Map(
				fmt.Sprintf("gcount%d@%d", s, s), func(r dataflow.Record) dataflow.Record {
					return dataflow.Record{Key: r.Key, Value: int64(len(r.Value.([]any)))}
				})
		case 6:
			other := pool[rng.Intn(len(pool))]
			next = dataflow.Barrier(fmt.Sprintf("bcast%d@%d", s, s), dataflow.OpMedium, pick, other,
				func(_ int, l, bc []dataflow.Record) []dataflow.Record {
					var shift int64
					for _, r := range bc {
						shift += r.Key % 7
					}
					out := make([]dataflow.Record, len(l))
					for i, r := range l {
						out[i] = dataflow.Record{Key: r.Key, Value: r.Value.(int64) + shift}
					}
					return out
				})
		}
		if rng.Intn(3) == 0 {
			next.Cache()
		}
		if rng.Intn(3) == 0 {
			collect(next)
		}
		pool = append(pool, next)
		if rng.Intn(6) == 0 && len(pool) > 3 {
			victim := pool[rng.Intn(len(pool)-1)]
			victim.Release()
		}
	}
	collect(pool[len(pool)-1])
	return checksums
}

// RefChecksums evaluates the random program on the reference evaluator.
func RefChecksums(seed int64) []int64 {
	ctx := dataflow.NewContext()
	dataflow.NewLocalRunner(ctx)
	return BuildRandomProgram(seed, ctx)
}
