package enginetest

import (
	"fmt"

	"blaze/internal/costmodel"
	"blaze/internal/dataflow"
	"blaze/internal/engine"
	"blaze/internal/eventlog"
	"blaze/internal/faults"
	"blaze/internal/metrics"
)

// ClusterSpec shapes the simulated cluster the recovery harness runs on.
// The zero value selects a 3-executor, 8 KiB-per-executor cluster — small
// enough to force heavy eviction on the random programs.
type ClusterSpec struct {
	Executors int
	Cores     int
	Memory    int64
}

func (s ClusterSpec) withDefaults() ClusterSpec {
	if s.Executors == 0 {
		s.Executors = 3
	}
	if s.Memory == 0 {
		s.Memory = 8 * 1024
	}
	return s
}

// RunRandomProgram executes the random program of BuildRandomProgram for
// the seed on a simulated cluster under the controller, with an optional
// fault-injection schedule, and returns the action checksums together
// with the run's metrics. With fcfg == nil it is the fault-free
// reference execution for that controller.
//
// This is the recovery-equivalence harness: whatever faults are injected,
// the engine's recovery paths (recomputation, disk reload, stage
// resubmission) must make the returned checksums identical to the
// fault-free run's, deterministically for a fixed seed.
func RunRandomProgram(seed int64, spec ClusterSpec, ctl engine.Controller, fcfg *faults.Config) ([]int64, *metrics.App, error) {
	return RunRandomProgramEx(seed, spec, ctl, fcfg, RunOptions{})
}

// RunOptions extends RunRandomProgram with the knobs the chaos soak
// harness sweeps: an explicit engine parallelism, a resilience
// configuration, and an optional event log to capture.
type RunOptions struct {
	// Parallelism is passed through to engine.Config.Parallelism
	// (0 = all CPUs, 1 = sequential loop).
	Parallelism int
	// Resilience is passed through to engine.Config.Resilience.
	Resilience engine.Resilience
	// EventLog, when non-nil, records the run's structured events.
	EventLog *eventlog.Log
}

// RunRandomProgramEx is RunRandomProgram with explicit RunOptions.
func RunRandomProgramEx(seed int64, spec ClusterSpec, ctl engine.Controller, fcfg *faults.Config, opts RunOptions) ([]int64, *metrics.App, error) {
	spec = spec.withDefaults()
	var hook engine.Hook
	if fcfg != nil {
		if err := fcfg.Validate(); err != nil {
			return nil, nil, fmt.Errorf("enginetest: %w", err)
		}
		hook = faults.New(*fcfg)
	}
	ctx := dataflow.NewContext()
	c, err := engine.NewCluster(engine.Config{
		Executors:         spec.Executors,
		CoresPerExecutor:  spec.Cores,
		MemoryPerExecutor: spec.Memory,
		Params:            costmodel.Default(),
		Controller:        ctl,
		Hook:              hook,
		Parallelism:       opts.Parallelism,
		Resilience:        opts.Resilience,
		EventLog:          opts.EventLog,
	}, ctx)
	if err != nil {
		return nil, nil, fmt.Errorf("enginetest: %w", err)
	}
	sums := BuildRandomProgram(seed, ctx)
	return sums, c.Finish(), nil
}

// FaultSchedules enumerates one representative injection schedule per
// fault class, at both job and stage boundaries, keyed by a descriptive
// name. Every controller is expected to produce identical action results
// under each of them.
func FaultSchedules(seed int64) map[string]faults.Config {
	out := make(map[string]faults.Config)
	for _, class := range faults.AllClasses() {
		out[class.String()+"/job"] = faults.Config{Seed: seed, Classes: []faults.Class{class}}
		out[class.String()+"/stage"] = faults.Config{Seed: seed, Classes: []faults.Class{class}, AtStageEnd: true, Every: 2}
	}
	return out
}
