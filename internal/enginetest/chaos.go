package enginetest

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"blaze/internal/engine"
	"blaze/internal/eventlog"
	"blaze/internal/faults"
	"blaze/internal/metrics"
)

// This file is the chaos soak harness: seed-derived randomized schedules
// mixing transient and permanent faults with randomized resilience
// knobs, executed over the random-program generator and checked against
// the soak invariants — the run terminates, the answers equal the
// fault-free reference, retries stay within budget, and the metrics and
// event log are bit-identical between Parallelism 1 and N.

// ChaosSchedule is one randomized soak scenario, fully derived from a
// seed so any failure reproduces from its seed alone.
type ChaosSchedule struct {
	// Seed is the schedule's own identity (the derivation seed).
	Seed int64
	// Program seeds BuildRandomProgram.
	Program int64
	// Spec shapes the cluster.
	Spec ClusterSpec
	// Faults is the randomized mixed-class injection schedule.
	Faults faults.Config
	// Res is the randomized resilience configuration.
	Res engine.Resilience
}

// NewChaosSchedule derives a randomized schedule from the seed: a random
// non-empty class subset mixing transient and permanent faults, random
// boundary/task rates, and random resilience knobs (speculation and
// blacklisting each enabled on a coin flip).
func NewChaosSchedule(seed int64) ChaosSchedule {
	rng := rand.New(rand.NewSource(seed))
	all := faults.AllClasses()
	var classes []faults.Class
	for _, cl := range all {
		if rng.Intn(2) == 0 {
			classes = append(classes, cl)
		}
	}
	if len(classes) == 0 {
		classes = []faults.Class{all[rng.Intn(len(all))]}
	}
	s := ChaosSchedule{
		Seed:    seed,
		Program: 1 + rng.Int63n(500),
		Spec: ClusterSpec{
			Executors: 2 + rng.Intn(3),
			Cores:     1 + rng.Intn(2),
		},
		Faults: faults.Config{
			Seed:            rng.Int63(),
			Classes:         classes,
			Every:           1 + rng.Intn(3),
			AtStageEnd:      rng.Intn(2) == 0,
			TaskEvery:       4 + rng.Intn(12),
			StragglerFactor: 2 + float64(rng.Intn(4)),
			StragglerWindow: 1 + rng.Intn(3),
		},
		Res: engine.Resilience{
			MaxTaskRetries:  1 + rng.Intn(4),
			MaxFetchRetries: 1 + rng.Intn(3),
			RetryBackoff:    time.Duration(1+rng.Intn(3)) * time.Millisecond,
		},
	}
	if rng.Intn(2) == 0 {
		s.Faults.MaxFaults = 1 + rng.Intn(6)
	}
	if rng.Intn(2) == 0 {
		s.Res.SpeculativeMultiple = 1.5 + rng.Float64()
	}
	if rng.Intn(2) == 0 {
		s.Res.BlacklistAfter = 2 + rng.Intn(4)
		s.Res.BlacklistCooldown = 1 + rng.Intn(3)
	}
	return s
}

// StreamChaosSchedule is one randomized streaming crash/resume soak
// scenario: a windowed stream that is killed by the server-crash fault
// at each boundary in CrashWindows (a chain — every crash is resumed
// and re-crashed at the next boundary in the list) and finally resumed
// to completion. Like ChaosSchedule it is fully seed-derived; the
// facade-level soak in chaos_test.go executes it, since streaming
// sessions live above the engine.
type StreamChaosSchedule struct {
	Seed int64
	// Workload indexes the registered stream workloads (facade order).
	Workload int
	// Windows is the stream length; CrashWindows the strictly increasing
	// boundaries (each in [2, Windows]) to crash at, one resume per.
	Windows      int
	CrashWindows []int
	Executors    int
	// MemoryPerExecutor varies the cache pressure across schedules.
	MemoryPerExecutor int64
}

// NewStreamChaosSchedule derives a randomized streaming crash schedule
// from the seed: 4-6 windows, a chain of 1-2 distinct crash boundaries,
// and a small random cluster shape.
func NewStreamChaosSchedule(seed int64) StreamChaosSchedule {
	rng := rand.New(rand.NewSource(seed))
	s := StreamChaosSchedule{
		Seed:              seed,
		Workload:          rng.Intn(2),
		Windows:           4 + rng.Intn(3),
		Executors:         2 + rng.Intn(3),
		MemoryPerExecutor: 1 << (19 + rng.Intn(2)),
	}
	crashes := 1 + rng.Intn(2)
	boundaries := rng.Perm(s.Windows - 1) // values 0..Windows-2 -> boundaries 2..Windows
	for _, b := range boundaries[:crashes] {
		s.CrashWindows = append(s.CrashWindows, b+2)
	}
	sort.Ints(s.CrashWindows)
	return s
}

// ChaosRun executes the schedule's random program under the controller
// at the given parallelism, returning checksums, metrics and event log.
func ChaosRun(s ChaosSchedule, ctl engine.Controller, parallelism int) ([]int64, *metrics.App, *eventlog.Log, error) {
	log := eventlog.New()
	fcfg := s.Faults
	sums, m, err := RunRandomProgramEx(s.Program, s.Spec, ctl, &fcfg, RunOptions{
		Parallelism: parallelism,
		Resilience:  s.Res,
		EventLog:    log,
	})
	return sums, m, log, err
}

// CheckChaosInvariants verifies one chaos run against the soak
// invariants that do not need a second run: the answers equal the
// fault-free reference checksums, retry counts respect the configured
// budgets, and the speculation/straggler counters are internally
// consistent. (Termination is implied by returning at all; the P1-vs-PN
// bit-identity is checked by the caller across two runs.)
func CheckChaosInvariants(s ChaosSchedule, ref, got []int64, m *metrics.App) error {
	if len(got) != len(ref) {
		return fmt.Errorf("chaos seed %d: %d checksums, fault-free run had %d", s.Seed, len(got), len(ref))
	}
	for i := range ref {
		if got[i] != ref[i] {
			return fmt.Errorf("chaos seed %d: checksum %d = %d, fault-free run had %d", s.Seed, i, got[i], ref[i])
		}
	}
	res := s.Res // normalized equivalents of what the engine applied
	totalTasks := 0
	for i := range m.Executors {
		totalTasks += m.Executors[i].Tasks
	}
	if res.MaxTaskRetries >= 0 && m.TaskRetries > res.MaxTaskRetries*totalTasks {
		return fmt.Errorf("chaos seed %d: %d task retries exceed budget %d x %d tasks",
			s.Seed, m.TaskRetries, res.MaxTaskRetries, totalTasks)
	}
	if res.MaxTaskRetries < 0 && m.TaskRetries != 0 {
		return fmt.Errorf("chaos seed %d: retries disabled but %d task retries recorded", s.Seed, m.TaskRetries)
	}
	if res.MaxFetchRetries < 0 && m.FetchRetries != 0 {
		return fmt.Errorf("chaos seed %d: fetch retries disabled but %d recorded", s.Seed, m.FetchRetries)
	}
	if m.SpeculativeWins > m.SpeculativeLaunches {
		return fmt.Errorf("chaos seed %d: %d speculative wins exceed %d launches",
			s.Seed, m.SpeculativeWins, m.SpeculativeLaunches)
	}
	if res.SpeculativeMultiple <= 1 && m.SpeculativeLaunches != 0 {
		return fmt.Errorf("chaos seed %d: speculation disabled but %d launches recorded", s.Seed, m.SpeculativeLaunches)
	}
	if res.BlacklistAfter <= 0 && m.BlacklistedExecutors != 0 {
		return fmt.Errorf("chaos seed %d: blacklisting disabled but %d episodes recorded", s.Seed, m.BlacklistedExecutors)
	}
	if m.StragglerSlowdownTime < 0 || m.RetryBackoffTime < 0 {
		return fmt.Errorf("chaos seed %d: negative resilience time accounting", s.Seed)
	}
	return nil
}

// CheckChaosIdentity verifies the parallel bit-identity invariant
// between two runs of the same schedule: identical metrics (field for
// field, excluding the optimizer's wall-clock ILPSolveTime — see
// metrics.EqualDeterministic) and identical event logs (event for
// event).
func CheckChaosIdentity(s ChaosSchedule, m1, mN *metrics.App, l1, lN *eventlog.Log) error {
	if !metrics.EqualDeterministic(m1, mN) {
		return fmt.Errorf("chaos seed %d: metrics differ between Parallelism 1 and N:\nP1: %+v\nPN: %+v", s.Seed, m1, mN)
	}
	e1, eN := l1.Events(), lN.Events()
	if len(e1) != len(eN) {
		return fmt.Errorf("chaos seed %d: event logs differ in length: %d vs %d", s.Seed, len(e1), len(eN))
	}
	for i := range e1 {
		if e1[i] != eN[i] {
			return fmt.Errorf("chaos seed %d: event %d differs:\nP1: %+v\nPN: %+v", s.Seed, i, e1[i], eN[i])
		}
	}
	return nil
}
