package ilp

import (
	"errors"
	"math"
	"sort"
)

// Problem is a binary integer linear program:
//
//	minimize    C·x
//	subject to  Constraints
//	            x_i ∈ {0, 1}
type Problem struct {
	C           []float64
	Constraints []Constraint
}

// Solution is the result of solving a Problem.
type Solution struct {
	// X holds the binary assignment (0 or 1 per variable).
	X []int
	// Objective is C·X.
	Objective float64
	// Optimal reports whether the solution is provably optimal: the
	// branch-and-bound search ran to exhaustion. It is false only when
	// the node budget truncated the search and the incumbent is merely
	// the best solution found so far.
	Optimal bool
	// Nodes counts branch-and-bound nodes explored.
	Nodes int
}

// Options tunes the branch-and-bound search.
type Options struct {
	// MaxNodes bounds the number of explored nodes; 0 means the default
	// (100000). When exceeded the best incumbent is returned with
	// Optimal=false, mirroring how Blaze bounds ILP latency (§5.5 keeps
	// the solve under a performance boundary).
	MaxNodes int
	// Incumbent optionally seeds the search with a known assignment
	// (e.g. the previous job's solution to a near-identical problem).
	// It is validated against the constraints and ignored if infeasible
	// or mis-sized; a feasible seed makes pruning strong from the first
	// node, which is the point of cross-job solution reuse.
	Incumbent []int
}

// ErrInfeasible is returned when no binary assignment satisfies the
// constraints.
var ErrInfeasible = errors.New("ilp: problem is infeasible")

// errNodeBudget is returned when the node budget ran out before any
// feasible assignment (seeded or discovered) existed.
var errNodeBudget = errors.New("ilp: node budget exhausted before any feasible solution")

// Solve finds a minimum-cost binary assignment by branch and bound on
// the LP relaxation.
//
// Unlike the dense reference (ReferenceSolve), the entire search shares
// one bounded-variable simplex workspace: branching fixes a variable by
// shrinking its box to [v,v] in place, the child starts from the parent
// basis, and backtracking restores the box — no per-node problem
// reconstruction, no tableau rebuild unless the inherited basis turns
// primal infeasible.
func Solve(p Problem, opts Options) (Solution, error) {
	best := Solution{Objective: math.Inf(1)}
	if obj, ok := incumbentObjective(p, opts.Incumbent); ok {
		best = Solution{X: append([]int(nil), opts.Incumbent...), Objective: obj}
	}
	best, nodes, truncated, err := solveCore(p, opts.MaxNodes, best)
	if err != nil {
		return Solution{Nodes: nodes}, err
	}
	if math.IsInf(best.Objective, 1) {
		if truncated {
			return Solution{Nodes: nodes}, errNodeBudget
		}
		return Solution{Nodes: nodes}, ErrInfeasible
	}
	best.Nodes = nodes
	// Optimality is exactly search exhaustion. (The old solver keyed
	// this off nodes < maxNodes, wrongly reporting a completed search as
	// truncated when the stack emptied on the budget's last node.)
	best.Optimal = !truncated
	return best, nil
}

// SolveFrom is the delta warm-start entry point: warm (a feasible
// assignment carried over from a near-identical earlier problem, e.g.
// the previous window's solution) seeds only the pruning *bound* of the
// branch and bound — never the stored answer. The search must rediscover
// its own optimum, so on a problem with a unique optimum SolveFrom
// returns exactly the assignment a cold Solve would, while pruning with
// the warm objective from the very first node. The slack added to the
// seeded bound guarantees no ancestor of the cold search's first-found
// optimum is ever pruned, even when the warm objective already equals
// the optimum. If warm is mis-sized, non-binary or infeasible the call
// degrades to a plain cold Solve. If the node budget truncates the
// search before any assignment is found, the warm assignment itself is
// returned with Optimal=false.
func SolveFrom(p Problem, warm []int, opts Options) (Solution, error) {
	warmObj, ok := incumbentObjective(p, warm)
	if !ok {
		opts.Incumbent = nil
		return Solve(p, opts)
	}
	// slack must exceed the 1e-9 prune tolerance so lb == warmObj ==
	// optimum survives: prune fires at lb >= bound-1e-9.
	slack := 1e-9*(1+math.Abs(warmObj)) + 2e-9
	best, nodes, truncated, err := solveCore(p, opts.MaxNodes, Solution{Objective: warmObj + slack})
	if err != nil {
		return Solution{Nodes: nodes}, err
	}
	if best.X == nil {
		// Budget exhausted before the search re-found any assignment:
		// fall back to the warm one, which is feasible by construction.
		return Solution{X: append([]int(nil), warm...), Objective: warmObj, Nodes: nodes}, nil
	}
	best.Nodes = nodes
	best.Optimal = !truncated
	return best, nil
}

// incumbentObjective validates a candidate seed assignment and returns
// its objective value.
func incumbentObjective(p Problem, x []int) (float64, bool) {
	n := len(p.C)
	if len(x) != n || n == 0 {
		return 0, false
	}
	for _, v := range x {
		if v != 0 && v != 1 {
			return 0, false
		}
	}
	if !feasible(p, x) {
		return 0, false
	}
	obj := 0.0
	for i, v := range x {
		obj += p.C[i] * float64(v)
	}
	return obj, true
}

// solveCore runs the shared-workspace branch and bound from an initial
// incumbent (possibly bound-only: an objective ceiling with no stored X).
func solveCore(p Problem, maxNodes int, best Solution) (Solution, int, bool, error) {
	n := len(p.C)
	if maxNodes <= 0 {
		maxNodes = 100000
	}

	w := newWorkspace(p)
	if w == nil {
		return Solution{}, 0, false, ErrInfeasible
	}
	nodes := 0
	truncated := false
	x := make([]float64, n)
	// rcFixed is the undo stack for reduced-cost fixing: columns this
	// search pinned to one bound because the LP duals prove the other
	// bound cannot beat the incumbent.
	var rcFixed []int

	var dfs func()
	dfs = func() {
		if truncated {
			return
		}
		if nodes >= maxNodes {
			truncated = true
			return
		}
		nodes++

		st := w.solveCurrent()
		switch st {
		case wsInfeasible:
			return
		case wsUnbounded:
			// With every structural variable boxed in [0,1] the LP
			// cannot truly be unbounded; treat defensively as a dead
			// end, like the dense solver.
			return
		}
		stuck := st == wsStuck
		branch := -1
		rcMark := len(rcFixed)
		if !stuck {
			w.extractX(x)
			lb := w.objValue(x)
			if lb >= best.Objective-1e-9 {
				return // prune: cannot improve the incumbent
			}
			// Reduced-cost fixing: with incumbent value U and LP bound
			// L, any integer solution that moves nonbasic j off its
			// bound costs at least L + |d_j|, so |d_j| > U - L pins j
			// for this whole subtree. This is what keeps the tree
			// small at n in the hundreds; the pins are undone when the
			// node unwinds.
			if gap := best.Objective - 1e-9 - lb; !math.IsInf(gap, 1) {
				for j := 0; j < n; j++ {
					if w.colRow[j] >= 0 || w.lo[j] >= w.hi[j] {
						continue
					}
					if d := w.obj[j]; !w.atUpper[j] && d > gap {
						w.setBounds(j, w.lo[j], w.lo[j])
						rcFixed = append(rcFixed, j)
					} else if w.atUpper[j] && -d > gap {
						w.setBounds(j, w.hi[j], w.hi[j])
						rcFixed = append(rcFixed, j)
					}
				}
			}
			// Branch on the most fractional free variable.
			bestFrac := 0.0
			for j := 0; j < n; j++ {
				if w.lo[j] >= w.hi[j] {
					continue
				}
				f := math.Abs(x[j] - math.Round(x[j]))
				if f > 1e-6 && f > bestFrac {
					bestFrac = f
					branch = j
				}
			}
		} else {
			// The relaxation did not converge, so there is no bound to
			// prune with and no fractional point to guide branching:
			// branch on the first free variable and keep searching —
			// exactness is preserved, only pruning is lost here.
			for j := 0; j < n; j++ {
				if w.lo[j] < w.hi[j] {
					branch = j
					break
				}
			}
		}

		if branch == -1 {
			// Every variable is integral (or fixed): candidate incumbent.
			xi := make([]int, n)
			if stuck {
				// All fixed but the LP was stuck: evaluate the forced
				// assignment directly.
				for j := 0; j < n; j++ {
					xi[j] = int(math.Round(w.lo[j]))
				}
				if feasible(p, xi) {
					obj := 0.0
					for j, v := range xi {
						obj += p.C[j] * float64(v)
					}
					if obj < best.Objective {
						best = Solution{X: xi, Objective: obj}
					}
				}
			} else {
				for j := 0; j < n; j++ {
					xi[j] = int(math.Round(x[j]))
				}
				obj := 0.0
				for j, v := range xi {
					obj += p.C[j] * float64(v)
				}
				if obj < best.Objective {
					best = Solution{X: xi, Objective: obj}
				}
			}
		} else {
			// Explore the rounded side first: DFS finds good incumbents
			// quickly, which strengthens pruning.
			near := 1
			if !stuck && math.Round(x[branch]) == 0 {
				near = 0
			}
			for _, v := range []int{near, 1 - near} {
				fv := float64(v)
				w.setBounds(branch, fv, fv)
				dfs()
				w.setBounds(branch, 0, 1)
				if truncated {
					break
				}
			}
		}

		// Unwind this node's reduced-cost pins.
		for len(rcFixed) > rcMark {
			j := rcFixed[len(rcFixed)-1]
			rcFixed = rcFixed[:len(rcFixed)-1]
			w.setBounds(j, 0, 1)
		}
	}
	dfs()

	return best, nodes, truncated, nil
}

// BruteForce enumerates all 2^n assignments and returns the optimum. It
// exists as the reference oracle for property-based tests and only
// supports small n.
func BruteForce(p Problem) (Solution, error) {
	n := len(p.C)
	if n > 20 {
		return Solution{}, errors.New("ilp: brute force limited to 20 variables")
	}
	best := Solution{Objective: math.Inf(1)}
	x := make([]int, n)
	for mask := 0; mask < 1<<n; mask++ {
		for i := 0; i < n; i++ {
			x[i] = (mask >> i) & 1
		}
		if !feasible(p, x) {
			continue
		}
		obj := 0.0
		for i, v := range x {
			obj += p.C[i] * float64(v)
		}
		if obj < best.Objective {
			best = Solution{X: append([]int(nil), x...), Objective: obj, Optimal: true}
		}
	}
	if math.IsInf(best.Objective, 1) {
		return Solution{}, ErrInfeasible
	}
	return best, nil
}

func feasible(p Problem, x []int) bool {
	for _, con := range p.Constraints {
		s := 0.0
		for i, v := range x {
			s += con.Coeffs[i] * float64(v)
		}
		switch con.Rel {
		case LE:
			if s > con.RHS+1e-9 {
				return false
			}
		case GE:
			if s < con.RHS-1e-9 {
				return false
			}
		case EQ:
			if math.Abs(s-con.RHS) > 1e-9 {
				return false
			}
		}
	}
	return true
}

// Knapsack solves the 0/1 knapsack problem exactly: choose items
// maximizing total value with total weight <= capacity. See
// KnapsackSearch for the mechanics; this wrapper keeps the original
// two-value signature for callers that do not need the search counters.
func Knapsack(values, weights []float64, capacity float64) (chosen []bool, total float64) {
	chosen, total, _, _ = KnapsackSearch(values, weights, capacity)
	return chosen, total
}

// KnapsackSearch is Knapsack plus accounting: it additionally reports
// the number of branch-and-bound nodes explored and whether the search
// ran to exhaustion (exact=true) or was truncated by the node budget.
// It uses the classic Horowitz-Sahni branch and bound with a fractional
// upper bound.
//
// This is the fast path for the Blaze ILP when disk capacity is abundant
// (the paper's default, §5.5): keeping partition p in memory saves its
// potential recovery cost min(cost_d, cost_r), so the optimal memory set
// maximizes saved cost subject to the memory capacity — a knapsack.
func KnapsackSearch(values, weights []float64, capacity float64) (chosen []bool, total float64, searchNodes int, exact bool) {
	return knapsackSearch(values, weights, capacity, nil)
}

// KnapsackSearchFrom is KnapsackSearch with a delta warm start: warm (a
// selection carried over from a near-identical earlier instance) seeds
// only the initial pruning bound, never the stored answer. The search
// keeps its exact item order and acceptance rule, so it returns the
// same selection a cold KnapsackSearch would — including under
// equal-value ties — while pruning with the warm value from the first
// node. An over-capacity or mis-sized warm selection is ignored. If the
// node budget truncates the search before it re-finds any selection at
// least as good as the floor, the warm selection itself is returned
// with exact=false.
func KnapsackSearchFrom(values, weights []float64, capacity float64, warm []bool) (chosen []bool, total float64, searchNodes int, exact bool) {
	return knapsackSearch(values, weights, capacity, warm)
}

func knapsackSearch(values, weights []float64, capacity float64, warm []bool) (chosen []bool, total float64, searchNodes int, exact bool) {
	n := len(values)
	if n == 0 || capacity < 0 {
		return make([]bool, n), 0, 0, true
	}
	type item struct {
		v, w float64
		idx  int
	}
	items := make([]item, 0, n)
	zeroWeight := make([]bool, n)
	for i := 0; i < n; i++ {
		v, w := values[i], weights[i]
		if v <= 0 {
			continue // never worth taking
		}
		if w <= 0 {
			zeroWeight[i] = true // free to take
			continue
		}
		items = append(items, item{v, w, i})
	}
	sort.Slice(items, func(a, b int) bool {
		da, db := items[a].v/items[a].w, items[b].v/items[b].w
		if da != db {
			return da > db
		}
		return items[a].idx < items[b].idx
	})

	// Trivial case: everything fits.
	var totalW float64
	for _, it := range items {
		totalW += it.w
	}
	if totalW <= capacity {
		chosen = make([]bool, n)
		for i := 0; i < n; i++ {
			if values[i] > 0 {
				chosen[i] = true
				total += values[i]
			}
		}
		return chosen, total, 0, true
	}

	// upper bound from position k with remaining capacity rem.
	bound := func(k int, rem, val float64) float64 {
		b := val
		for ; k < len(items); k++ {
			if items[k].w <= rem {
				rem -= items[k].w
				b += items[k].v
			} else {
				b += items[k].v / items[k].w * rem
				break
			}
		}
		return b
	}

	// Branch and bound with a node budget: items sorted by density make
	// the take-first DFS find a near-optimal greedy incumbent
	// immediately, so exhausting the budget on adversarial inputs (many
	// equal-density items) still returns an excellent solution — the
	// same latency bounding Blaze applies to its solver (§5.5).
	const nodeBudget = 200000
	nodes := 0
	bestVal := -1.0
	// Delta warm start: a feasible carried-over selection sets the
	// initial pruning floor just below its own value. The slack keeps
	// every ancestor of the cold search's first-found optimum unpruned
	// (the prune tolerance is 1e-12), so the warm search returns the
	// identical selection while pruning hard from the first node.
	warmFloor := false
	warmVal := 0.0
	if len(warm) == n {
		var ww float64
		for i, take := range warm {
			if !take || values[i] <= 0 || weights[i] <= 0 {
				continue
			}
			warmVal += values[i]
			ww += weights[i]
		}
		if ww <= capacity && warmVal > 0 {
			warmFloor = true
			bestVal = warmVal - 1e-9*(1+warmVal)
		}
	}
	found := false
	cur := make([]bool, len(items))
	bestSel := make([]bool, len(items))
	var dfs func(k int, rem, val float64)
	dfs = func(k int, rem, val float64) {
		nodes++
		if val > bestVal {
			bestVal = val
			copy(bestSel, cur)
			found = true
		}
		if k >= len(items) || nodes > nodeBudget {
			return
		}
		if bound(k, rem, val) <= bestVal+1e-12 {
			return
		}
		if items[k].w <= rem {
			cur[k] = true
			dfs(k+1, rem-items[k].w, val+items[k].v)
			cur[k] = false
		}
		dfs(k+1, rem, val)
	}
	dfs(0, capacity, 0)

	if warmFloor && !found {
		// The node budget ran out before the search re-found any
		// selection at least as good as the floor: fall back to the
		// warm selection, which is feasible by construction.
		chosen = make([]bool, n)
		for i := range zeroWeight {
			if zeroWeight[i] {
				chosen[i] = true
				total += values[i]
			}
		}
		for i, take := range warm {
			if take && values[i] > 0 && weights[i] > 0 {
				chosen[i] = true
				total += values[i]
			}
		}
		return chosen, total, nodes, false
	}

	chosen = make([]bool, n)
	total = 0
	for i := range zeroWeight {
		if zeroWeight[i] {
			chosen[i] = true
			total += values[i]
		}
	}
	for k, sel := range bestSel {
		if sel {
			chosen[items[k].idx] = true
			total += items[k].v
		}
	}
	return chosen, total, nodes, nodes <= nodeBudget
}
