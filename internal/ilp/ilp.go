package ilp

import (
	"errors"
	"math"
	"sort"
)

// Problem is a binary integer linear program:
//
//	minimize    C·x
//	subject to  Constraints
//	            x_i ∈ {0, 1}
type Problem struct {
	C           []float64
	Constraints []Constraint
}

// Solution is the result of solving a Problem.
type Solution struct {
	// X holds the binary assignment (0 or 1 per variable).
	X []int
	// Objective is C·X.
	Objective float64
	// Optimal reports whether the solution is provably optimal. It is
	// false when the node budget was exhausted and the incumbent is only
	// the best solution found so far.
	Optimal bool
	// Nodes counts branch-and-bound nodes explored.
	Nodes int
}

// Options tunes the branch-and-bound search.
type Options struct {
	// MaxNodes bounds the number of explored nodes; 0 means the default
	// (100000). When exceeded the best incumbent is returned with
	// Optimal=false, mirroring how Blaze bounds ILP latency (§5.5 keeps
	// the solve under a performance boundary).
	MaxNodes int
}

// ErrInfeasible is returned when no binary assignment satisfies the
// constraints.
var ErrInfeasible = errors.New("ilp: problem is infeasible")

// Solve finds a minimum-cost binary assignment by branch and bound on the
// LP relaxation.
func Solve(p Problem, opts Options) (Solution, error) {
	n := len(p.C)
	maxNodes := opts.MaxNodes
	if maxNodes <= 0 {
		maxNodes = 100000
	}
	best := Solution{Objective: math.Inf(1)}
	nodes := 0

	// fixed[i]: -1 free, 0 or 1 fixed by branching.
	type node struct {
		fixed []int8
	}
	start := node{fixed: make([]int8, n)}
	for i := range start.fixed {
		start.fixed[i] = -1
	}
	stack := []node{start}

	for len(stack) > 0 && nodes < maxNodes {
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nodes++

		x, lb, status := solveFixedLP(p, nd.fixed)
		if status == LPInfeasible {
			continue
		}
		if status == LPUnbounded {
			// With all variables in [0,1] the LP cannot be unbounded;
			// treat defensively as a dead end.
			continue
		}
		if lb >= best.Objective-1e-9 {
			continue // prune: cannot improve the incumbent
		}
		// Find the most fractional variable.
		branch := -1
		bestFrac := 0.0
		for i, v := range x {
			f := math.Abs(v - math.Round(v))
			if f > 1e-6 && f > bestFrac {
				bestFrac = f
				branch = i
			}
		}
		if branch == -1 {
			// Integer solution: new incumbent.
			xi := make([]int, n)
			for i, v := range x {
				xi[i] = int(math.Round(v))
			}
			obj := 0.0
			for i, v := range xi {
				obj += p.C[i] * float64(v)
			}
			if obj < best.Objective {
				best = Solution{X: xi, Objective: obj, Optimal: true}
			}
			continue
		}
		// Branch: explore the rounded side first (DFS finds good
		// incumbents quickly, which strengthens pruning).
		near := int8(math.Round(x[branch]))
		for _, v := range []int8{1 - near, near} {
			child := node{fixed: append([]int8(nil), nd.fixed...)}
			child.fixed[branch] = v
			stack = append(stack, child)
		}
	}

	best.Nodes = nodes
	if math.IsInf(best.Objective, 1) {
		if nodes >= maxNodes {
			return Solution{Nodes: nodes}, errors.New("ilp: node budget exhausted before any feasible solution")
		}
		return Solution{Nodes: nodes}, ErrInfeasible
	}
	best.Optimal = best.Optimal && nodes < maxNodes
	return best, nil
}

// solveFixedLP solves the LP relaxation with some variables fixed by
// branching. Fixed variables are substituted out of the problem.
func solveFixedLP(p Problem, fixed []int8) (x []float64, obj float64, status LPStatus) {
	n := len(p.C)
	freeIdx := make([]int, 0, n)
	for i, f := range fixed {
		if f == -1 {
			freeIdx = append(freeIdx, i)
		}
	}
	if len(freeIdx) == n {
		return solveLP(p.C, p.Constraints)
	}
	// Reduced problem over free variables.
	cr := make([]float64, len(freeIdx))
	baseObj := 0.0
	for i, f := range fixed {
		if f == 1 {
			baseObj += p.C[i]
		}
	}
	for j, i := range freeIdx {
		cr[j] = p.C[i]
	}
	consr := make([]Constraint, 0, len(p.Constraints))
	for _, con := range p.Constraints {
		rhs := con.RHS
		coeffs := make([]float64, len(freeIdx))
		for i, f := range fixed {
			if f == 1 {
				rhs -= con.Coeffs[i]
			}
		}
		for j, i := range freeIdx {
			coeffs[j] = con.Coeffs[i]
		}
		// A constraint with no free variables is either trivially
		// satisfied or proves infeasibility.
		allZero := true
		for _, c := range coeffs {
			if c != 0 {
				allZero = false
				break
			}
		}
		if allZero {
			switch con.Rel {
			case LE:
				if rhs < -1e-9 {
					return nil, 0, LPInfeasible
				}
			case GE:
				if rhs > 1e-9 {
					return nil, 0, LPInfeasible
				}
			case EQ:
				if math.Abs(rhs) > 1e-9 {
					return nil, 0, LPInfeasible
				}
			}
			continue
		}
		consr = append(consr, Constraint{Coeffs: coeffs, Rel: con.Rel, RHS: rhs})
	}
	xr, objr, st := solveLP(cr, consr)
	if st != LPOptimal {
		return nil, 0, st
	}
	x = make([]float64, n)
	for i, f := range fixed {
		if f == 1 {
			x[i] = 1
		}
	}
	for j, i := range freeIdx {
		x[i] = xr[j]
	}
	return x, baseObj + objr, LPOptimal
}

// BruteForce enumerates all 2^n assignments and returns the optimum. It
// exists as the reference oracle for property-based tests and only
// supports small n.
func BruteForce(p Problem) (Solution, error) {
	n := len(p.C)
	if n > 20 {
		return Solution{}, errors.New("ilp: brute force limited to 20 variables")
	}
	best := Solution{Objective: math.Inf(1)}
	x := make([]int, n)
	for mask := 0; mask < 1<<n; mask++ {
		for i := 0; i < n; i++ {
			x[i] = (mask >> i) & 1
		}
		if !feasible(p, x) {
			continue
		}
		obj := 0.0
		for i, v := range x {
			obj += p.C[i] * float64(v)
		}
		if obj < best.Objective {
			best = Solution{X: append([]int(nil), x...), Objective: obj, Optimal: true}
		}
	}
	if math.IsInf(best.Objective, 1) {
		return Solution{}, ErrInfeasible
	}
	return best, nil
}

func feasible(p Problem, x []int) bool {
	for _, con := range p.Constraints {
		s := 0.0
		for i, v := range x {
			s += con.Coeffs[i] * float64(v)
		}
		switch con.Rel {
		case LE:
			if s > con.RHS+1e-9 {
				return false
			}
		case GE:
			if s < con.RHS-1e-9 {
				return false
			}
		case EQ:
			if math.Abs(s-con.RHS) > 1e-9 {
				return false
			}
		}
	}
	return true
}

// Knapsack solves the 0/1 knapsack problem exactly: choose items
// maximizing total value with total weight <= capacity. It uses the
// classic Horowitz-Sahni branch and bound with a fractional upper bound.
//
// This is the fast path for the Blaze ILP when disk capacity is abundant
// (the paper's default, §5.5): keeping partition p in memory saves its
// potential recovery cost min(cost_d, cost_r), so the optimal memory set
// maximizes saved cost subject to the memory capacity — a knapsack.
func Knapsack(values, weights []float64, capacity float64) (chosen []bool, total float64) {
	n := len(values)
	if n == 0 || capacity < 0 {
		return make([]bool, n), 0
	}
	type item struct {
		v, w float64
		idx  int
	}
	items := make([]item, 0, n)
	zeroWeight := make([]bool, n)
	for i := 0; i < n; i++ {
		v, w := values[i], weights[i]
		if v <= 0 {
			continue // never worth taking
		}
		if w <= 0 {
			zeroWeight[i] = true // free to take
			continue
		}
		items = append(items, item{v, w, i})
	}
	sort.Slice(items, func(a, b int) bool {
		da, db := items[a].v/items[a].w, items[b].v/items[b].w
		if da != db {
			return da > db
		}
		return items[a].idx < items[b].idx
	})

	// Trivial case: everything fits.
	var totalW float64
	for _, it := range items {
		totalW += it.w
	}
	if totalW <= capacity {
		chosen = make([]bool, n)
		for i := 0; i < n; i++ {
			if values[i] > 0 {
				chosen[i] = true
				total += values[i]
			}
		}
		return chosen, total
	}

	// upper bound from position k with remaining capacity rem.
	bound := func(k int, rem, val float64) float64 {
		b := val
		for ; k < len(items); k++ {
			if items[k].w <= rem {
				rem -= items[k].w
				b += items[k].v
			} else {
				b += items[k].v / items[k].w * rem
				break
			}
		}
		return b
	}

	// Branch and bound with a node budget: items sorted by density make
	// the take-first DFS find a near-optimal greedy incumbent
	// immediately, so exhausting the budget on adversarial inputs (many
	// equal-density items) still returns an excellent solution — the
	// same latency bounding Blaze applies to its solver (§5.5).
	const nodeBudget = 200000
	nodes := 0
	bestVal := -1.0
	cur := make([]bool, len(items))
	bestSel := make([]bool, len(items))
	var dfs func(k int, rem, val float64)
	dfs = func(k int, rem, val float64) {
		nodes++
		if val > bestVal {
			bestVal = val
			copy(bestSel, cur)
		}
		if k >= len(items) || nodes > nodeBudget {
			return
		}
		if bound(k, rem, val) <= bestVal+1e-12 {
			return
		}
		if items[k].w <= rem {
			cur[k] = true
			dfs(k+1, rem-items[k].w, val+items[k].v)
			cur[k] = false
		}
		dfs(k+1, rem, val)
	}
	dfs(0, capacity, 0)

	chosen = make([]bool, n)
	total = 0
	for i := range zeroWeight {
		if zeroWeight[i] {
			chosen[i] = true
			total += values[i]
		}
	}
	for k, sel := range bestSel {
		if sel {
			chosen[items[k].idx] = true
			total += items[k].v
		}
	}
	return chosen, total
}
