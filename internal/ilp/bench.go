package ilp

import (
	"math"
	"math/rand"
)

// BenchProblem builds a deterministic Blaze-shaped ILP over the given
// number of partitions: 3 variables per partition (memory / disk /
// unpersist), a "pick exactly one state" equality row per partition, and
// memory and disk capacity rows sized so both constraints bind (~40% of
// total demand fits in memory, ~80% on disk). This is the instance shape
// internal/core emits for the disk-constrained case, reused by
// bench_test.go and blazebench -ilp so benchmark numbers are comparable
// across tools.
func BenchProblem(parts int, seed int64) Problem {
	rng := rand.New(rand.NewSource(seed))
	n := parts * 3
	p := Problem{C: make([]float64, n)}
	memRow := make([]float64, n)
	diskRow := make([]float64, n)
	var totalSize float64
	for i := 0; i < parts; i++ {
		size := 1024 * (1 + rng.ExpFloat64()*4)
		costD := math.Round(rng.Float64()*50 + 1)
		costR := math.Round(rng.Float64()*150 + 1)
		p.C[3*i+1] = costD
		p.C[3*i+2] = costR
		memRow[3*i] = size
		diskRow[3*i+1] = size
		totalSize += size
		row := make([]float64, n)
		row[3*i], row[3*i+1], row[3*i+2] = 1, 1, 1
		p.Constraints = append(p.Constraints, Constraint{Coeffs: row, Rel: EQ, RHS: 1})
	}
	p.Constraints = append(p.Constraints,
		Constraint{Coeffs: memRow, Rel: LE, RHS: totalSize * 0.4},
		Constraint{Coeffs: diskRow, Rel: LE, RHS: totalSize * 0.8})
	return p
}
