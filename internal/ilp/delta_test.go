package ilp

import (
	"math"
	"math/rand"
	"testing"
)

// This file covers the delta warm-start entry points (SolveFrom,
// KnapsackSearchFrom). The contract under test is the one the windowed
// controller relies on: a warm seed accelerates the search through its
// pruning bound only, so the returned assignment is the one a cold
// solve would produce — exactly for the knapsack (any instance, ties
// included), and for the full ILP on instances with a unique optimum
// (internal/core guarantees uniqueness at window boundaries via a
// deterministic objective perturbation applied to both solves).

// uniquify applies the same index-based relative perturbation the
// windowed controller applies at window boundaries, breaking objective
// ties deterministically so the optimum is unique.
func uniquify(p Problem) Problem {
	q := Problem{C: append([]float64(nil), p.C...), Constraints: p.Constraints}
	for i := range q.C {
		q.C[i] += (1 + math.Abs(q.C[i])) * 1e-7 * float64(i+1) / float64(len(q.C)+1)
	}
	return q
}

func assignEq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSolveFromMatchesColdOnUniqueOptima(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		for _, kind := range []uint8{1, 3} {
			p := uniquify(fuzzProblem(seed, uint8(seed%13), uint8(seed%7), kind))
			cold, err := Solve(p, Options{})
			if err != nil {
				continue
			}
			if !cold.Optimal {
				continue
			}
			seeds := [][]int{
				cold.X, // warm == the optimum itself
				allUnpersist(p),
			}
			for si, warm := range seeds {
				got, err := SolveFrom(p, warm, Options{})
				if err != nil {
					t.Fatalf("seed %d kind %d warm %d: SolveFrom error %v", seed, kind, si, err)
				}
				if !got.Optimal {
					t.Fatalf("seed %d kind %d warm %d: delta solve not optimal", seed, kind, si)
				}
				if !assignEq(got.X, cold.X) {
					t.Fatalf("seed %d kind %d warm %d: delta X %v != cold X %v (obj %g vs %g)",
						seed, kind, si, got.X, cold.X, got.Objective, cold.Objective)
				}
			}
		}
	}
}

// allUnpersist builds the always-feasible Blaze-shaped assignment that
// leaves every partition unpersisted (the u column of each EQ triple).
// For non-Blaze shapes it returns a mis-sized slice, which SolveFrom
// must treat as no seed at all.
func allUnpersist(p Problem) []int {
	n := len(p.C)
	if n%3 != 0 {
		return []int{0}
	}
	x := make([]int, n)
	for i := 0; i+2 < n; i += 3 {
		x[i+2] = 1
	}
	return x
}

func TestSolveFromInvalidWarmDegradesToCold(t *testing.T) {
	p := uniquify(fuzzProblem(42, 5, 3, 1))
	cold, err := Solve(p, Options{})
	if err != nil || !cold.Optimal {
		t.Fatalf("cold solve: %v optimal=%v", err, cold.Optimal)
	}
	bad := [][]int{
		nil,
		{1},
		make([]int, len(p.C)+1),
		func() []int { x := make([]int, len(p.C)); x[0] = 2; return x }(),
	}
	for i, warm := range bad {
		got, err := SolveFrom(p, warm, Options{})
		if err != nil {
			t.Fatalf("bad warm %d: %v", i, err)
		}
		if !assignEq(got.X, cold.X) {
			t.Fatalf("bad warm %d: X %v != cold %v", i, got.X, cold.X)
		}
	}
	// An infeasible warm assignment (two states picked in one EQ triple)
	// must likewise be ignored.
	infeas := make([]int, len(p.C))
	infeas[0], infeas[1] = 1, 1
	got, err := SolveFrom(p, infeas, Options{})
	if err != nil {
		t.Fatalf("infeasible warm: %v", err)
	}
	if !assignEq(got.X, cold.X) {
		t.Fatalf("infeasible warm: X %v != cold %v", got.X, cold.X)
	}
}

func TestSolveFromBudgetFallsBackToWarm(t *testing.T) {
	p := uniquify(fuzzProblem(7, 5, 3, 3))
	warm := allUnpersist(p)
	got, err := SolveFrom(p, warm, Options{MaxNodes: 1})
	if err != nil {
		t.Fatalf("SolveFrom: %v", err)
	}
	if got.Optimal {
		t.Fatalf("1-node search cannot be optimal")
	}
	if got.X == nil {
		t.Fatalf("expected warm fallback assignment")
	}
	if !feasible(p, got.X) {
		t.Fatalf("fallback assignment infeasible: %v", got.X)
	}
}

func TestKnapsackSearchFromMatchesColdExactly(t *testing.T) {
	for seed := int64(0); seed < 300; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(14)
		values := make([]float64, n)
		weights := make([]float64, n)
		for i := 0; i < n; i++ {
			// Small integral grids force plenty of equal-density and
			// equal-value ties — the adversarial case for set identity.
			values[i] = float64(rng.Intn(8))
			weights[i] = float64(rng.Intn(6))
			if rng.Intn(10) == 0 {
				values[i] = -values[i]
			}
		}
		capacity := float64(rng.Intn(12))
		coldSel, coldTotal, _, coldExact := KnapsackSearch(values, weights, capacity)
		if !coldExact {
			continue
		}
		warms := [][]bool{
			coldSel,
			make([]bool, n), // empty seed
			func() []bool { // stale seed: flip a few items, may be infeasible
				w := append([]bool(nil), coldSel...)
				for k := 0; k < 2 && k < n; k++ {
					i := rng.Intn(n)
					w[i] = !w[i]
				}
				return w
			}(),
			make([]bool, n+1), // mis-sized
		}
		for wi, warm := range warms {
			sel, total, _, exact := KnapsackSearchFrom(values, weights, capacity, warm)
			if !exact {
				t.Fatalf("seed %d warm %d: warm search not exact while cold was", seed, wi)
			}
			if math.Abs(total-coldTotal) > 1e-9 {
				t.Fatalf("seed %d warm %d: total %g != cold %g", seed, wi, total, coldTotal)
			}
			for i := range sel {
				if sel[i] != coldSel[i] {
					t.Fatalf("seed %d warm %d: selection %v != cold %v", seed, wi, sel, coldSel)
				}
			}
		}
	}
}

func TestKnapsackSearchFromPrunesHarder(t *testing.T) {
	// With the optimum as floor the warm search must not expand more
	// nodes than the cold search on any instance.
	for seed := int64(0); seed < 100; seed++ {
		rng := rand.New(rand.NewSource(1000 + seed))
		n := 8 + rng.Intn(10)
		values := make([]float64, n)
		weights := make([]float64, n)
		for i := 0; i < n; i++ {
			values[i] = 1 + rng.Float64()*50
			weights[i] = 1 + rng.Float64()*20
		}
		capacity := rng.Float64() * 60
		coldSel, _, coldNodes, coldExact := KnapsackSearch(values, weights, capacity)
		if !coldExact {
			continue
		}
		_, _, warmNodes, _ := KnapsackSearchFrom(values, weights, capacity, coldSel)
		if warmNodes > coldNodes {
			t.Fatalf("seed %d: warm explored %d nodes > cold %d", seed, warmNodes, coldNodes)
		}
	}
}
