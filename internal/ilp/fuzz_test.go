package ilp

import (
	"math"
	"math/rand"
	"testing"
)

// This file is the differential-testing harness for the bounded-variable
// solver: every sampled problem is solved by the new warm-started branch
// and bound AND by at least one independent implementation — BruteForce
// (exhaustive, the ground truth) for small n, the dense ReferenceSolve
// and denseSolveLP (the pre-rewrite solver, kept in dense.go exactly for
// this purpose) for everything. Objectives must agree to 1e-6 and every
// returned assignment must satisfy the constraints. The seed corpus runs
// on every CI build (go test -run Fuzz).

// fuzzProblem derives a random ILP from the fuzz inputs. kind selects
// the generator: even kinds produce general mixed-relation problems,
// odd kinds produce Blaze-shaped instances (per-partition "pick one of
// memory/disk/unpersist" equality rows plus capacity rows) — the
// structure internal/core actually emits.
func fuzzProblem(seed int64, n, m, kind uint8) Problem {
	rng := rand.New(rand.NewSource(seed))
	if kind%2 == 1 {
		parts := 1 + int(n)%6
		nv := parts * 3
		p := Problem{C: make([]float64, nv)}
		memRow := make([]float64, nv)
		diskRow := make([]float64, nv)
		for i := 0; i < parts; i++ {
			p.C[3*i+1] = math.Round(rng.Float64() * 100)
			p.C[3*i+2] = math.Round(rng.Float64() * 100)
			size := 1 + math.Round(rng.Float64()*9)
			memRow[3*i] = size
			diskRow[3*i+1] = size
			row := make([]float64, nv)
			row[3*i], row[3*i+1], row[3*i+2] = 1, 1, 1
			p.Constraints = append(p.Constraints, Constraint{Coeffs: row, Rel: EQ, RHS: 1})
		}
		p.Constraints = append(p.Constraints,
			Constraint{Coeffs: memRow, Rel: LE, RHS: math.Round(rng.Float64() * 20)})
		if kind%4 == 3 {
			p.Constraints = append(p.Constraints,
				Constraint{Coeffs: diskRow, Rel: LE, RHS: math.Round(rng.Float64() * 25)})
		}
		return p
	}
	nv := 1 + int(n)%10
	nc := 1 + int(m)%4
	p := Problem{C: make([]float64, nv)}
	for i := range p.C {
		p.C[i] = math.Round(rng.Float64()*40-20) / 2
	}
	for j := 0; j < nc; j++ {
		c := Constraint{
			Coeffs: make([]float64, nv),
			Rel:    Relation(rng.Intn(3)),
			RHS:    math.Round(rng.Float64()*14) - 2,
		}
		for i := range c.Coeffs {
			c.Coeffs[i] = math.Round(rng.Float64()*8) - 2
		}
		p.Constraints = append(p.Constraints, c)
	}
	return p
}

// FuzzSolveDifferential checks the bounded-variable branch and bound
// against BruteForce (when n fits) and the dense reference solver on the
// same instance: identical feasibility verdicts and equal objectives.
func FuzzSolveDifferential(f *testing.F) {
	for s := int64(1); s <= 12; s++ {
		f.Add(s, uint8(s), uint8(s%4), uint8(s%6))
	}
	f.Add(int64(99), uint8(12), uint8(3), uint8(1)) // Blaze shape, mem row only
	f.Add(int64(77), uint8(17), uint8(2), uint8(3)) // Blaze shape, mem+disk rows
	f.Fuzz(func(t *testing.T, seed int64, n, m, kind uint8) {
		p := fuzzProblem(seed, n, m, kind)
		got, gotErr := Solve(p, Options{})
		ref, refErr := ReferenceSolve(p, Options{})
		if (gotErr == nil) != (refErr == nil) {
			t.Fatalf("feasibility disagrees: bounded err=%v dense err=%v\nproblem %+v", gotErr, refErr, p)
		}
		if gotErr == nil {
			if !feasible(p, got.X) {
				t.Fatalf("bounded solver returned infeasible assignment %v\nproblem %+v", got.X, p)
			}
			if got.Optimal && ref.Optimal && math.Abs(got.Objective-ref.Objective) > 1e-6 {
				t.Fatalf("objective %v != dense reference %v\nproblem %+v", got.Objective, ref.Objective, p)
			}
		}
		if len(p.C) <= 14 {
			want, wantErr := BruteForce(p)
			if (gotErr == nil) != (wantErr == nil) {
				t.Fatalf("feasibility disagrees with brute force: err=%v brute err=%v\nproblem %+v", gotErr, wantErr, p)
			}
			if gotErr == nil && got.Optimal && math.Abs(got.Objective-want.Objective) > 1e-6 {
				t.Fatalf("objective %v != brute force %v\nproblem %+v", got.Objective, want.Objective, p)
			}
		}
	})
}

// FuzzSimplexDifferential checks one-shot LP relaxations: the
// bounded-variable simplex and the dense two-phase simplex must agree on
// status and optimal objective.
func FuzzSimplexDifferential(f *testing.F) {
	for s := int64(1); s <= 10; s++ {
		f.Add(s, uint8(2*s), uint8(s%5), uint8(s%4))
	}
	f.Fuzz(func(t *testing.T, seed int64, n, m, kind uint8) {
		p := fuzzProblem(seed, n, m, kind)
		x1, o1, s1 := solveLP(p.C, p.Constraints)
		_, o2, s2 := denseSolveLP(p.C, p.Constraints)
		if s1 != s2 {
			t.Fatalf("LP status %v != dense %v\nproblem %+v", s1, s2, p)
		}
		if s1 == LPOptimal {
			if math.Abs(o1-o2) > 1e-6 {
				t.Fatalf("LP objective %v != dense %v\nproblem %+v", o1, o2, p)
			}
			for j, v := range x1 {
				if v < -1e-9 || v > 1+1e-9 {
					t.Fatalf("x[%d] = %v outside [0,1]", j, v)
				}
			}
		}
	})
}

// FuzzWarmStartBounds drives one workspace through a random fix/unfix
// sequence — exactly what branch and bound does — checking every
// intermediate optimum against a cold dense solve of the equivalent
// fixed problem. This is the regression net for the warm-start state
// machine (stale bases, bound flips, infeasible-refresh reuse).
func FuzzWarmStartBounds(f *testing.F) {
	for s := int64(1); s <= 10; s++ {
		f.Add(s, uint8(3*s), uint8(s%4), uint8(s%6), uint8(7*s))
	}
	f.Fuzz(func(t *testing.T, seed int64, n, m, kind, steps uint8) {
		p := fuzzProblem(seed, n, m, kind)
		nv := len(p.C)
		w := newWorkspace(p)
		if w == nil {
			t.Fatal("workspace construction failed on generated problem")
		}
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		fixed := make([]int8, nv)
		for i := range fixed {
			fixed[i] = -1
		}
		nSteps := 4 + int(steps)%28
		for step := 0; step < nSteps; step++ {
			j := rng.Intn(nv)
			v := int8(rng.Intn(3)) - 1
			fixed[j] = v
			if v == -1 {
				w.setBounds(j, 0, 1)
			} else {
				w.setBounds(j, float64(v), float64(v))
			}
			st := w.solveCurrent()
			if st == wsStuck {
				continue // no claim to check; B&B handles this separately
			}
			_, dObj, dSt := denseSolveFixed(p, fixed)
			if (st == wsOptimal) != (dSt == LPOptimal) {
				t.Fatalf("step %d: warm status %v, dense %v\nfixed=%v problem %+v", step, st, dSt, fixed, p)
			}
			if st == wsOptimal {
				x := make([]float64, nv)
				w.extractX(x)
				if o := w.objValue(x); math.Abs(o-dObj) > 1e-6 {
					t.Fatalf("step %d: warm obj %v != dense %v\nfixed=%v x=%v problem %+v", step, o, dObj, fixed, x, p)
				}
			}
		}
	})
}
