package ilp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSimplexSimple(t *testing.T) {
	// minimize -x - y subject to x + y <= 1.5 → optimum at a vertex with
	// x+y = 1.5 (e.g. x=1, y=0.5), objective -1.5.
	x, obj, st := solveLP([]float64{-1, -1}, []Constraint{
		{Coeffs: []float64{1, 1}, Rel: LE, RHS: 1.5},
	})
	if st != LPOptimal {
		t.Fatalf("status = %v", st)
	}
	if math.Abs(obj-(-1.5)) > 1e-6 {
		t.Fatalf("objective = %v, want -1.5 (x=%v)", obj, x)
	}
}

func TestSimplexEquality(t *testing.T) {
	// minimize x + 2y subject to x + y == 1 → x=1, y=0, obj=1.
	x, obj, st := solveLP([]float64{1, 2}, []Constraint{
		{Coeffs: []float64{1, 1}, Rel: EQ, RHS: 1},
	})
	if st != LPOptimal {
		t.Fatalf("status = %v", st)
	}
	if math.Abs(obj-1) > 1e-6 || math.Abs(x[0]-1) > 1e-6 {
		t.Fatalf("x = %v obj = %v, want x0=1 obj=1", x, obj)
	}
}

func TestSimplexInfeasible(t *testing.T) {
	// x >= 2 is impossible with x <= 1.
	_, _, st := solveLP([]float64{1}, []Constraint{
		{Coeffs: []float64{1}, Rel: GE, RHS: 2},
	})
	if st != LPInfeasible {
		t.Fatalf("status = %v, want infeasible", st)
	}
}

func TestSimplexNegativeRHS(t *testing.T) {
	// minimize x subject to -x <= -0.5  (i.e. x >= 0.5).
	x, obj, st := solveLP([]float64{1}, []Constraint{
		{Coeffs: []float64{-1}, Rel: LE, RHS: -0.5},
	})
	if st != LPOptimal {
		t.Fatalf("status = %v", st)
	}
	if math.Abs(obj-0.5) > 1e-6 {
		t.Fatalf("x = %v obj = %v, want 0.5", x, obj)
	}
}

func TestSolveBinaryKnapsackShape(t *testing.T) {
	// minimize -(3a + 4b + 5c) s.t. 2a + 3b + 4c <= 5 → best is a+b (7).
	p := Problem{
		C: []float64{-3, -4, -5},
		Constraints: []Constraint{
			{Coeffs: []float64{2, 3, 4}, Rel: LE, RHS: 5},
		},
	}
	s, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Optimal {
		t.Fatal("expected provably optimal solution")
	}
	if math.Abs(s.Objective-(-7)) > 1e-6 {
		t.Fatalf("objective = %v, want -7 (x=%v)", s.Objective, s.X)
	}
}

func TestSolvePartitionStateShape(t *testing.T) {
	// A miniature Blaze instance: 2 partitions, variables
	// (m1,d1,u1,m2,d2,u2), m_i+d_i+u_i = 1, size 10 each, capacity 10.
	// Costs: partition 1 is expensive to recover, partition 2 cheap, so
	// partition 1 should take the memory slot.
	p := Problem{
		C: []float64{0, 50, 100, 0, 5, 2},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1, 1, 0, 0, 0}, Rel: EQ, RHS: 1},
			{Coeffs: []float64{0, 0, 0, 1, 1, 1}, Rel: EQ, RHS: 1},
			{Coeffs: []float64{10, 0, 0, 10, 0, 0}, Rel: LE, RHS: 10},
		},
	}
	s, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 0, 0, 0, 0, 1} // p1 in memory; p2 unpersisted (cost 2)
	for i, v := range want {
		if s.X[i] != v {
			t.Fatalf("X = %v, want %v (objective %v)", s.X, want, s.Objective)
		}
	}
}

func TestSolveInfeasible(t *testing.T) {
	p := Problem{
		C: []float64{1, 1},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Rel: GE, RHS: 3}, // max achievable is 2
		},
	}
	if _, err := Solve(p, Options{}); err == nil {
		t.Fatal("expected infeasibility error")
	}
}

// randomProblem builds a small random binary ILP that is always feasible
// (pure <= constraints with non-negative RHS admit x = 0).
func randomProblem(rng *rand.Rand, n, m int) Problem {
	p := Problem{C: make([]float64, n)}
	for i := range p.C {
		p.C[i] = math.Round(rng.Float64()*40-20) / 2
	}
	for j := 0; j < m; j++ {
		c := Constraint{Coeffs: make([]float64, n), Rel: LE, RHS: math.Round(rng.Float64() * 10)}
		for i := range c.Coeffs {
			c.Coeffs[i] = math.Round(rng.Float64() * 6)
		}
		p.Constraints = append(p.Constraints, c)
	}
	return p
}

// Property: branch and bound matches brute force on random instances.
func TestSolveMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(9)
		m := 1 + rng.Intn(3)
		p := randomProblem(rng, n, m)
		got, err := Solve(p, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want, err := BruteForce(p)
		if err != nil {
			t.Fatalf("trial %d brute force: %v", trial, err)
		}
		if math.Abs(got.Objective-want.Objective) > 1e-6 {
			t.Fatalf("trial %d: B&B obj %v != brute force obj %v\nproblem: %+v",
				trial, got.Objective, want.Objective, p)
		}
		if !feasible(p, got.X) {
			t.Fatalf("trial %d: B&B returned infeasible assignment %v", trial, got.X)
		}
	}
}

// Property: with equality "pick one state" rows (the Blaze structure),
// B&B still matches brute force.
func TestSolveMatchesBruteForcePartitionStates(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		parts := 2 + rng.Intn(3) // up to 4 partitions → 12 vars
		n := parts * 3
		p := Problem{C: make([]float64, n)}
		sizes := make([]float64, parts)
		for i := 0; i < parts; i++ {
			p.C[3*i] = 0
			p.C[3*i+1] = math.Round(rng.Float64() * 100) // disk cost
			p.C[3*i+2] = math.Round(rng.Float64() * 100) // recompute cost
			sizes[i] = 1 + math.Round(rng.Float64()*9)
			row := make([]float64, n)
			row[3*i], row[3*i+1], row[3*i+2] = 1, 1, 1
			p.Constraints = append(p.Constraints, Constraint{Coeffs: row, Rel: EQ, RHS: 1})
		}
		mem := make([]float64, n)
		for i := 0; i < parts; i++ {
			mem[3*i] = sizes[i]
		}
		cap := math.Round(rng.Float64() * 20)
		p.Constraints = append(p.Constraints, Constraint{Coeffs: mem, Rel: LE, RHS: cap})

		got, err := Solve(p, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want, err := BruteForce(p)
		if err != nil {
			t.Fatalf("trial %d brute: %v", trial, err)
		}
		if math.Abs(got.Objective-want.Objective) > 1e-6 {
			t.Fatalf("trial %d: obj %v != %v", trial, got.Objective, want.Objective)
		}
	}
}

// Property: the knapsack solver matches the ILP formulation of the same
// knapsack.
func TestKnapsackMatchesILP(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(10)
		values := make([]float64, n)
		weights := make([]float64, n)
		for i := 0; i < n; i++ {
			values[i] = math.Round(rng.Float64() * 50)
			weights[i] = 1 + math.Round(rng.Float64()*9)
		}
		cap := math.Round(rng.Float64() * 25)
		_, total := Knapsack(values, weights, cap)

		p := Problem{C: make([]float64, n)}
		for i := range p.C {
			p.C[i] = -values[i]
		}
		p.Constraints = []Constraint{{Coeffs: weights, Rel: LE, RHS: cap}}
		s, err := Solve(p, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if math.Abs(total-(-s.Objective)) > 1e-6 {
			t.Fatalf("trial %d: knapsack %v != ILP %v (values=%v weights=%v cap=%v)",
				trial, total, -s.Objective, values, weights, cap)
		}
	}
}

// Property: knapsack selections always respect capacity.
func TestKnapsackRespectsCapacity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(15)
		values := make([]float64, n)
		weights := make([]float64, n)
		for i := 0; i < n; i++ {
			values[i] = rng.Float64() * 100
			weights[i] = rng.Float64() * 10
		}
		cap := rng.Float64() * 30
		chosen, _ := Knapsack(values, weights, cap)
		w := 0.0
		for i, c := range chosen {
			if c && weights[i] > 0 {
				w += weights[i]
			}
		}
		return w <= cap+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestKnapsackZeroWeightAlwaysTaken(t *testing.T) {
	chosen, total := Knapsack([]float64{5, 3}, []float64{0, 10}, 1)
	if !chosen[0] || chosen[1] {
		t.Fatalf("chosen = %v, want only the zero-weight item", chosen)
	}
	if total != 5 {
		t.Fatalf("total = %v, want 5", total)
	}
}

func TestKnapsackEmpty(t *testing.T) {
	chosen, total := Knapsack(nil, nil, 10)
	if len(chosen) != 0 || total != 0 {
		t.Fatalf("empty knapsack should be empty, got %v %v", chosen, total)
	}
}

// Regression for the truncation-flag bug: the old solver reported
// Optimal = nodes < maxNodes, so a search that ran to exhaustion using
// exactly its node budget was wrongly reported as truncated. Optimality
// must depend on whether unexplored work remained, not the counter.
func TestSolveOptimalAtExactNodeBudget(t *testing.T) {
	p := Problem{
		C: []float64{-3, -4, -5},
		Constraints: []Constraint{
			{Coeffs: []float64{2, 3, 4}, Rel: LE, RHS: 4},
		},
	}
	s, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Optimal || s.Nodes < 2 {
		t.Fatalf("baseline solve: optimal=%v nodes=%d, want an exhausted multi-node search", s.Optimal, s.Nodes)
	}
	// Re-run with the budget set to exactly the nodes the search needs:
	// it completes on the last allowed node and must still be optimal.
	s2, err := Solve(p, Options{MaxNodes: s.Nodes})
	if err != nil {
		t.Fatal(err)
	}
	if !s2.Optimal {
		t.Fatalf("search completed exactly at the node budget but was reported truncated (nodes=%d)", s2.Nodes)
	}
	if math.Abs(s2.Objective-s.Objective) > 1e-9 {
		t.Fatalf("objective changed under exact budget: %v vs %v", s2.Objective, s.Objective)
	}
	// One node short must be reported as truncated (when a feasible
	// incumbent was still found).
	if s3, err := Solve(p, Options{MaxNodes: s.Nodes - 1}); err == nil && s3.Optimal {
		t.Fatalf("truncated search (%d of %d nodes) claimed optimality", s3.Nodes, s.Nodes)
	}
}

// A feasible incumbent seed lets a budget-starved solve return that
// incumbent instead of failing, and never degrades the final answer.
func TestSolveIncumbentSeed(t *testing.T) {
	p := Problem{
		C: []float64{0, 50, 100, 0, 5, 2},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1, 1, 0, 0, 0}, Rel: EQ, RHS: 1},
			{Coeffs: []float64{0, 0, 0, 1, 1, 1}, Rel: EQ, RHS: 1},
			{Coeffs: []float64{10, 0, 0, 10, 0, 0}, Rel: LE, RHS: 10},
		},
	}
	// Budget starvation with a fractional root relaxation: the seed is
	// all the solver has, and it must hand it back untouched.
	frac := Problem{
		C: []float64{-3, -4, -5},
		Constraints: []Constraint{
			{Coeffs: []float64{2, 3, 4}, Rel: LE, RHS: 4},
		},
	}
	s, err := Solve(frac, Options{MaxNodes: 1, Incumbent: []int{1, 0, 0}})
	if err != nil {
		t.Fatalf("seeded budget-starved solve failed: %v", err)
	}
	if s.Optimal {
		t.Fatal("truncated seeded solve claimed optimality")
	}
	if s.Objective > -3+1e-9 {
		t.Fatalf("seeded solve returned %v, worse than its own seed (-3, feasible under RHS 4)", s.Objective)
	}
	// With a full budget the optimum (2: keep p1 in memory, unpersist
	// p2) must be found regardless of the seed.
	seed := []int{0, 1, 0, 0, 0, 1} // feasible, objective 52
	s, err = Solve(p, Options{Incumbent: seed})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Optimal || math.Abs(s.Objective-2) > 1e-9 {
		t.Fatalf("seeded full solve: optimal=%v obj=%v, want optimal obj=2", s.Optimal, s.Objective)
	}
	// An optimal seed makes pruning immediate: the search proves
	// optimality without re-deriving the assignment.
	s2, err := Solve(p, Options{Incumbent: s.X})
	if err != nil {
		t.Fatal(err)
	}
	if !s2.Optimal || math.Abs(s2.Objective-2) > 1e-9 {
		t.Fatalf("optimally-seeded solve: optimal=%v obj=%v", s2.Optimal, s2.Objective)
	}
	if s2.Nodes > s.Nodes {
		t.Fatalf("optimal seed explored more nodes (%d) than unseeded (%d)", s2.Nodes, s.Nodes)
	}
}

// Infeasible or malformed incumbents are ignored, never trusted.
func TestSolveIncumbentRejected(t *testing.T) {
	p := Problem{
		C: []float64{-3, -4, -5},
		Constraints: []Constraint{
			{Coeffs: []float64{2, 3, 4}, Rel: LE, RHS: 5},
		},
	}
	for _, seed := range [][]int{
		{1, 1, 1},    // violates the capacity row
		{0, 2, 0},    // not binary
		{1},          // wrong arity
		{0, 0, 0, 0}, // wrong arity
	} {
		s, err := Solve(p, Options{Incumbent: seed})
		if err != nil {
			t.Fatalf("seed %v: %v", seed, err)
		}
		if !s.Optimal || math.Abs(s.Objective-(-7)) > 1e-6 {
			t.Fatalf("seed %v corrupted the solve: optimal=%v obj=%v", seed, s.Optimal, s.Objective)
		}
		if !feasible(p, s.X) {
			t.Fatalf("seed %v leaked an infeasible assignment %v", seed, s.X)
		}
	}
}

// KnapsackSearch reports its search effort; the wrapper stays equal.
func TestKnapsackSearchAccounting(t *testing.T) {
	values := []float64{27, 2, 48, 1, 49, 28, 30, 33}
	weights := []float64{3, 4, 8, 8, 6, 6, 2, 5}
	chosen, total, nodes, exact := KnapsackSearch(values, weights, 7)
	if !exact {
		t.Fatal("small knapsack reported truncated search")
	}
	if nodes <= 0 {
		t.Fatalf("nontrivial knapsack reported %d nodes", nodes)
	}
	c2, t2 := Knapsack(values, weights, 7)
	if total != t2 {
		t.Fatalf("wrapper total %v != search total %v", t2, total)
	}
	for i := range chosen {
		if chosen[i] != c2[i] {
			t.Fatalf("wrapper selection differs at %d", i)
		}
	}
	// All-fits fast path: no search at all.
	_, _, nodes, exact = KnapsackSearch([]float64{1, 2}, []float64{1, 1}, 10)
	if nodes != 0 || !exact {
		t.Fatalf("trivial knapsack: nodes=%d exact=%v, want 0/true", nodes, exact)
	}
}

// The bounded solver must match the dense reference node-for-node on
// problems both solve to optimality (same pruning rule, same branch
// order), proving the rewrite changed the algebra, not the search.
func TestSolveMatchesDenseReference(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(9)
		m := 1 + rng.Intn(3)
		p := randomProblem(rng, n, m)
		got, err := Solve(p, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		ref, err := ReferenceSolve(p, Options{})
		if err != nil {
			t.Fatalf("trial %d reference: %v", trial, err)
		}
		if math.Abs(got.Objective-ref.Objective) > 1e-6 {
			t.Fatalf("trial %d: bounded obj %v != dense obj %v\nproblem %+v",
				trial, got.Objective, ref.Objective, p)
		}
	}
}

func TestLPStatusString(t *testing.T) {
	if LPOptimal.String() != "optimal" || LPInfeasible.String() != "infeasible" || LPUnbounded.String() != "unbounded" {
		t.Fatal("status strings wrong")
	}
	if LPStatus(9).String() != "LPStatus(9)" {
		t.Fatal("unknown status string wrong")
	}
}
