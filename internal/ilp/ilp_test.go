package ilp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSimplexSimple(t *testing.T) {
	// minimize -x - y subject to x + y <= 1.5 → optimum at a vertex with
	// x+y = 1.5 (e.g. x=1, y=0.5), objective -1.5.
	x, obj, st := solveLP([]float64{-1, -1}, []Constraint{
		{Coeffs: []float64{1, 1}, Rel: LE, RHS: 1.5},
	})
	if st != LPOptimal {
		t.Fatalf("status = %v", st)
	}
	if math.Abs(obj-(-1.5)) > 1e-6 {
		t.Fatalf("objective = %v, want -1.5 (x=%v)", obj, x)
	}
}

func TestSimplexEquality(t *testing.T) {
	// minimize x + 2y subject to x + y == 1 → x=1, y=0, obj=1.
	x, obj, st := solveLP([]float64{1, 2}, []Constraint{
		{Coeffs: []float64{1, 1}, Rel: EQ, RHS: 1},
	})
	if st != LPOptimal {
		t.Fatalf("status = %v", st)
	}
	if math.Abs(obj-1) > 1e-6 || math.Abs(x[0]-1) > 1e-6 {
		t.Fatalf("x = %v obj = %v, want x0=1 obj=1", x, obj)
	}
}

func TestSimplexInfeasible(t *testing.T) {
	// x >= 2 is impossible with x <= 1.
	_, _, st := solveLP([]float64{1}, []Constraint{
		{Coeffs: []float64{1}, Rel: GE, RHS: 2},
	})
	if st != LPInfeasible {
		t.Fatalf("status = %v, want infeasible", st)
	}
}

func TestSimplexNegativeRHS(t *testing.T) {
	// minimize x subject to -x <= -0.5  (i.e. x >= 0.5).
	x, obj, st := solveLP([]float64{1}, []Constraint{
		{Coeffs: []float64{-1}, Rel: LE, RHS: -0.5},
	})
	if st != LPOptimal {
		t.Fatalf("status = %v", st)
	}
	if math.Abs(obj-0.5) > 1e-6 {
		t.Fatalf("x = %v obj = %v, want 0.5", x, obj)
	}
}

func TestSolveBinaryKnapsackShape(t *testing.T) {
	// minimize -(3a + 4b + 5c) s.t. 2a + 3b + 4c <= 5 → best is a+b (7).
	p := Problem{
		C: []float64{-3, -4, -5},
		Constraints: []Constraint{
			{Coeffs: []float64{2, 3, 4}, Rel: LE, RHS: 5},
		},
	}
	s, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Optimal {
		t.Fatal("expected provably optimal solution")
	}
	if math.Abs(s.Objective-(-7)) > 1e-6 {
		t.Fatalf("objective = %v, want -7 (x=%v)", s.Objective, s.X)
	}
}

func TestSolvePartitionStateShape(t *testing.T) {
	// A miniature Blaze instance: 2 partitions, variables
	// (m1,d1,u1,m2,d2,u2), m_i+d_i+u_i = 1, size 10 each, capacity 10.
	// Costs: partition 1 is expensive to recover, partition 2 cheap, so
	// partition 1 should take the memory slot.
	p := Problem{
		C: []float64{0, 50, 100, 0, 5, 2},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1, 1, 0, 0, 0}, Rel: EQ, RHS: 1},
			{Coeffs: []float64{0, 0, 0, 1, 1, 1}, Rel: EQ, RHS: 1},
			{Coeffs: []float64{10, 0, 0, 10, 0, 0}, Rel: LE, RHS: 10},
		},
	}
	s, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 0, 0, 0, 0, 1} // p1 in memory; p2 unpersisted (cost 2)
	for i, v := range want {
		if s.X[i] != v {
			t.Fatalf("X = %v, want %v (objective %v)", s.X, want, s.Objective)
		}
	}
}

func TestSolveInfeasible(t *testing.T) {
	p := Problem{
		C: []float64{1, 1},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Rel: GE, RHS: 3}, // max achievable is 2
		},
	}
	if _, err := Solve(p, Options{}); err == nil {
		t.Fatal("expected infeasibility error")
	}
}

// randomProblem builds a small random binary ILP that is always feasible
// (pure <= constraints with non-negative RHS admit x = 0).
func randomProblem(rng *rand.Rand, n, m int) Problem {
	p := Problem{C: make([]float64, n)}
	for i := range p.C {
		p.C[i] = math.Round(rng.Float64()*40-20) / 2
	}
	for j := 0; j < m; j++ {
		c := Constraint{Coeffs: make([]float64, n), Rel: LE, RHS: math.Round(rng.Float64() * 10)}
		for i := range c.Coeffs {
			c.Coeffs[i] = math.Round(rng.Float64() * 6)
		}
		p.Constraints = append(p.Constraints, c)
	}
	return p
}

// Property: branch and bound matches brute force on random instances.
func TestSolveMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(9)
		m := 1 + rng.Intn(3)
		p := randomProblem(rng, n, m)
		got, err := Solve(p, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want, err := BruteForce(p)
		if err != nil {
			t.Fatalf("trial %d brute force: %v", trial, err)
		}
		if math.Abs(got.Objective-want.Objective) > 1e-6 {
			t.Fatalf("trial %d: B&B obj %v != brute force obj %v\nproblem: %+v",
				trial, got.Objective, want.Objective, p)
		}
		if !feasible(p, got.X) {
			t.Fatalf("trial %d: B&B returned infeasible assignment %v", trial, got.X)
		}
	}
}

// Property: with equality "pick one state" rows (the Blaze structure),
// B&B still matches brute force.
func TestSolveMatchesBruteForcePartitionStates(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		parts := 2 + rng.Intn(3) // up to 4 partitions → 12 vars
		n := parts * 3
		p := Problem{C: make([]float64, n)}
		sizes := make([]float64, parts)
		for i := 0; i < parts; i++ {
			p.C[3*i] = 0
			p.C[3*i+1] = math.Round(rng.Float64() * 100) // disk cost
			p.C[3*i+2] = math.Round(rng.Float64() * 100) // recompute cost
			sizes[i] = 1 + math.Round(rng.Float64()*9)
			row := make([]float64, n)
			row[3*i], row[3*i+1], row[3*i+2] = 1, 1, 1
			p.Constraints = append(p.Constraints, Constraint{Coeffs: row, Rel: EQ, RHS: 1})
		}
		mem := make([]float64, n)
		for i := 0; i < parts; i++ {
			mem[3*i] = sizes[i]
		}
		cap := math.Round(rng.Float64() * 20)
		p.Constraints = append(p.Constraints, Constraint{Coeffs: mem, Rel: LE, RHS: cap})

		got, err := Solve(p, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want, err := BruteForce(p)
		if err != nil {
			t.Fatalf("trial %d brute: %v", trial, err)
		}
		if math.Abs(got.Objective-want.Objective) > 1e-6 {
			t.Fatalf("trial %d: obj %v != %v", trial, got.Objective, want.Objective)
		}
	}
}

// Property: the knapsack solver matches the ILP formulation of the same
// knapsack.
func TestKnapsackMatchesILP(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(10)
		values := make([]float64, n)
		weights := make([]float64, n)
		for i := 0; i < n; i++ {
			values[i] = math.Round(rng.Float64() * 50)
			weights[i] = 1 + math.Round(rng.Float64()*9)
		}
		cap := math.Round(rng.Float64() * 25)
		_, total := Knapsack(values, weights, cap)

		p := Problem{C: make([]float64, n)}
		for i := range p.C {
			p.C[i] = -values[i]
		}
		p.Constraints = []Constraint{{Coeffs: weights, Rel: LE, RHS: cap}}
		s, err := Solve(p, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if math.Abs(total-(-s.Objective)) > 1e-6 {
			t.Fatalf("trial %d: knapsack %v != ILP %v (values=%v weights=%v cap=%v)",
				trial, total, -s.Objective, values, weights, cap)
		}
	}
}

// Property: knapsack selections always respect capacity.
func TestKnapsackRespectsCapacity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(15)
		values := make([]float64, n)
		weights := make([]float64, n)
		for i := 0; i < n; i++ {
			values[i] = rng.Float64() * 100
			weights[i] = rng.Float64() * 10
		}
		cap := rng.Float64() * 30
		chosen, _ := Knapsack(values, weights, cap)
		w := 0.0
		for i, c := range chosen {
			if c && weights[i] > 0 {
				w += weights[i]
			}
		}
		return w <= cap+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestKnapsackZeroWeightAlwaysTaken(t *testing.T) {
	chosen, total := Knapsack([]float64{5, 3}, []float64{0, 10}, 1)
	if !chosen[0] || chosen[1] {
		t.Fatalf("chosen = %v, want only the zero-weight item", chosen)
	}
	if total != 5 {
		t.Fatalf("total = %v, want 5", total)
	}
}

func TestKnapsackEmpty(t *testing.T) {
	chosen, total := Knapsack(nil, nil, 10)
	if len(chosen) != 0 || total != 0 {
		t.Fatalf("empty knapsack should be empty, got %v %v", chosen, total)
	}
}

func TestLPStatusString(t *testing.T) {
	if LPOptimal.String() != "optimal" || LPInfeasible.String() != "infeasible" || LPUnbounded.String() != "unbounded" {
		t.Fatal("status strings wrong")
	}
	if LPStatus(9).String() != "LPStatus(9)" {
		t.Fatal("unknown status string wrong")
	}
}
