package ilp

import (
	"errors"
	"math"
)

// This file preserves the original dense solver as a reference baseline.
// ReferenceSolve is the pre-bounded-variable branch and bound: a dense
// two-phase simplex whose tableau appends every variable upper bound as
// an explicit <= 1 row and rebuilds the reduced problem from scratch at
// every node. It exists ONLY as the differential-testing oracle and the
// benchmark baseline (bench_test.go, blazebench -ilp) — production code
// must call Solve, which runs the bounded-variable simplex on a tableau
// ~4x smaller and reuses one workspace across the whole search.

// ReferenceSolve finds a minimum-cost binary assignment with the
// original dense algorithm. Semantics match Solve (same pruning rule,
// same branch order) so node-for-node comparisons are meaningful.
func ReferenceSolve(p Problem, opts Options) (Solution, error) {
	n := len(p.C)
	maxNodes := opts.MaxNodes
	if maxNodes <= 0 {
		maxNodes = 100000
	}
	best := Solution{Objective: math.Inf(1)}
	nodes := 0

	// fixed[i]: -1 free, 0 or 1 fixed by branching.
	type node struct {
		fixed []int8
	}
	start := node{fixed: make([]int8, n)}
	for i := range start.fixed {
		start.fixed[i] = -1
	}
	stack := []node{start}

	for len(stack) > 0 && nodes < maxNodes {
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nodes++

		x, lb, status := denseSolveFixed(p, nd.fixed)
		if status == LPInfeasible {
			continue
		}
		if status == LPUnbounded {
			// With all variables in [0,1] the LP cannot be unbounded;
			// treat defensively as a dead end.
			continue
		}
		if lb >= best.Objective-1e-9 {
			continue // prune: cannot improve the incumbent
		}
		// Find the most fractional variable.
		branch := -1
		bestFrac := 0.0
		for i, v := range x {
			f := math.Abs(v - math.Round(v))
			if f > 1e-6 && f > bestFrac {
				bestFrac = f
				branch = i
			}
		}
		if branch == -1 {
			// Integer solution: new incumbent.
			xi := make([]int, n)
			for i, v := range x {
				xi[i] = int(math.Round(v))
			}
			obj := 0.0
			for i, v := range xi {
				obj += p.C[i] * float64(v)
			}
			if obj < best.Objective {
				best = Solution{X: xi, Objective: obj, Optimal: true}
			}
			continue
		}
		// Branch: explore the rounded side first (DFS finds good
		// incumbents quickly, which strengthens pruning).
		near := int8(math.Round(x[branch]))
		for _, v := range []int8{1 - near, near} {
			child := node{fixed: append([]int8(nil), nd.fixed...)}
			child.fixed[branch] = v
			stack = append(stack, child)
		}
	}

	best.Nodes = nodes
	if math.IsInf(best.Objective, 1) {
		if nodes >= maxNodes {
			return Solution{Nodes: nodes}, errors.New("ilp: node budget exhausted before any feasible solution")
		}
		return Solution{Nodes: nodes}, ErrInfeasible
	}
	best.Optimal = best.Optimal && nodes < maxNodes
	return best, nil
}

// denseSolveFixed solves the LP relaxation with some variables fixed by
// branching, substituting fixed variables out of the problem and
// re-assembling a reduced problem — the per-node reconstruction cost the
// bounded-variable workspace eliminates.
func denseSolveFixed(p Problem, fixed []int8) (x []float64, obj float64, status LPStatus) {
	n := len(p.C)
	freeIdx := make([]int, 0, n)
	for i, f := range fixed {
		if f == -1 {
			freeIdx = append(freeIdx, i)
		}
	}
	if len(freeIdx) == n {
		return denseSolveLP(p.C, p.Constraints)
	}
	// Reduced problem over free variables.
	cr := make([]float64, len(freeIdx))
	baseObj := 0.0
	for i, f := range fixed {
		if f == 1 {
			baseObj += p.C[i]
		}
	}
	for j, i := range freeIdx {
		cr[j] = p.C[i]
	}
	consr := make([]Constraint, 0, len(p.Constraints))
	for _, con := range p.Constraints {
		rhs := con.RHS
		coeffs := make([]float64, len(freeIdx))
		for i, f := range fixed {
			if f == 1 {
				rhs -= con.Coeffs[i]
			}
		}
		for j, i := range freeIdx {
			coeffs[j] = con.Coeffs[i]
		}
		// A constraint with no free variables is either trivially
		// satisfied or proves infeasibility.
		allZero := true
		for _, c := range coeffs {
			if c != 0 {
				allZero = false
				break
			}
		}
		if allZero {
			switch con.Rel {
			case LE:
				if rhs < -1e-9 {
					return nil, 0, LPInfeasible
				}
			case GE:
				if rhs > 1e-9 {
					return nil, 0, LPInfeasible
				}
			case EQ:
				if math.Abs(rhs) > 1e-9 {
					return nil, 0, LPInfeasible
				}
			}
			continue
		}
		consr = append(consr, Constraint{Coeffs: coeffs, Rel: con.Rel, RHS: rhs})
	}
	xr, objr, st := denseSolveLP(cr, consr)
	if st != LPOptimal {
		return nil, 0, st
	}
	x = make([]float64, n)
	for i, f := range fixed {
		if f == 1 {
			x[i] = 1
		}
	}
	for j, i := range freeIdx {
		x[i] = xr[j]
	}
	return x, baseObj + objr, LPOptimal
}

// denseSolveLP minimizes c·x subject to the given constraints and
// 0 <= x_i <= 1, using the original two-phase dense simplex with Bland's
// rule. The variable upper bounds are appended internally as <= 1 rows,
// which is exactly the tableau blow-up the bounded-variable simplex in
// simplex.go avoids.
func denseSolveLP(c []float64, cons []Constraint) (x []float64, obj float64, status LPStatus) {
	n := len(c)
	// Assemble the full constraint list including variable upper bounds.
	all := make([]Constraint, 0, len(cons)+n)
	all = append(all, cons...)
	for i := 0; i < n; i++ {
		row := make([]float64, n)
		row[i] = 1
		all = append(all, Constraint{Coeffs: row, Rel: LE, RHS: 1})
	}
	m := len(all)

	// Standard form: every row gets RHS >= 0; <= rows get a slack,
	// >= rows get a surplus and an artificial, == rows get an artificial.
	type rowSpec struct {
		coeffs []float64
		rhs    float64
		rel    Relation
	}
	rows := make([]rowSpec, m)
	numSlack, numArt := 0, 0
	for i, con := range all {
		if len(con.Coeffs) != n {
			return nil, 0, LPInfeasible
		}
		coeffs := append([]float64(nil), con.Coeffs...)
		rhs := con.RHS
		rel := con.Rel
		if rhs < 0 {
			for j := range coeffs {
				coeffs[j] = -coeffs[j]
			}
			rhs = -rhs
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		rows[i] = rowSpec{coeffs, rhs, rel}
		switch rel {
		case LE:
			numSlack++
		case GE:
			numSlack++
			numArt++
		case EQ:
			numArt++
		}
	}

	total := n + numSlack + numArt
	// tab has m rows of (total coefficients + rhs).
	tab := make([][]float64, m)
	basis := make([]int, m)
	slackIdx, artIdx := n, n+numSlack
	artCols := make([]int, 0, numArt)
	for i, r := range rows {
		row := make([]float64, total+1)
		copy(row, r.coeffs)
		row[total] = r.rhs
		switch r.rel {
		case LE:
			row[slackIdx] = 1
			basis[i] = slackIdx
			slackIdx++
		case GE:
			row[slackIdx] = -1
			slackIdx++
			row[artIdx] = 1
			basis[i] = artIdx
			artCols = append(artCols, artIdx)
			artIdx++
		case EQ:
			row[artIdx] = 1
			basis[i] = artIdx
			artCols = append(artCols, artIdx)
			artIdx++
		}
		tab[i] = row
	}

	pivot := func(obj []float64, allowed int) LPStatus {
		for {
			// Entering variable: Bland's rule — smallest index with a
			// negative reduced cost.
			col := -1
			for j := 0; j < allowed; j++ {
				if obj[j] < -eps {
					col = j
					break
				}
			}
			if col == -1 {
				return LPOptimal
			}
			// Leaving variable: minimum ratio, ties by smallest basis index.
			row := -1
			best := math.Inf(1)
			for i := 0; i < m; i++ {
				a := tab[i][col]
				if a > eps {
					ratio := tab[i][total] / a
					if ratio < best-eps || (math.Abs(ratio-best) <= eps && (row == -1 || basis[i] < basis[row])) {
						best = ratio
						row = i
					}
				}
			}
			if row == -1 {
				return LPUnbounded
			}
			// Pivot on (row, col).
			p := tab[row][col]
			for j := 0; j <= total; j++ {
				tab[row][j] /= p
			}
			for i := 0; i < m; i++ {
				if i == row {
					continue
				}
				f := tab[i][col]
				if f != 0 {
					for j := 0; j <= total; j++ {
						tab[i][j] -= f * tab[row][j]
					}
				}
			}
			f := obj[col]
			if f != 0 {
				for j := 0; j <= total; j++ {
					obj[j] -= f * tab[row][j]
				}
			}
			basis[row] = col
		}
	}

	// Phase 1: minimize the sum of artificial variables.
	if numArt > 0 {
		phase1 := make([]float64, total+1)
		for _, j := range artCols {
			phase1[j] = 1
		}
		// Express the phase-1 objective in terms of non-basic variables.
		for i, b := range basis {
			if phase1[b] != 0 {
				f := phase1[b]
				for j := 0; j <= total; j++ {
					phase1[j] -= f * tab[i][j]
				}
			}
		}
		if st := pivot(phase1, total); st == LPUnbounded {
			return nil, 0, LPInfeasible
		}
		if -phase1[total] > 1e-6 {
			return nil, 0, LPInfeasible
		}
		// Drive any artificial variables still in the basis out of it.
		for i := 0; i < m; i++ {
			if basis[i] >= n+numSlack {
				moved := false
				for j := 0; j < n+numSlack; j++ {
					if math.Abs(tab[i][j]) > eps {
						p := tab[i][j]
						for k := 0; k <= total; k++ {
							tab[i][k] /= p
						}
						for r := 0; r < m; r++ {
							if r == i {
								continue
							}
							f := tab[r][j]
							if f != 0 {
								for k := 0; k <= total; k++ {
									tab[r][k] -= f * tab[i][k]
								}
							}
						}
						basis[i] = j
						moved = true
						break
					}
				}
				if !moved {
					// Redundant row; leave the artificial at zero.
					continue
				}
			}
		}
	}

	// Phase 2: minimize the real objective over structural+slack columns.
	phase2 := make([]float64, total+1)
	copy(phase2, c)
	for i, b := range basis {
		if b < len(c) && phase2[b] != 0 {
			f := phase2[b]
			for j := 0; j <= total; j++ {
				phase2[j] -= f * tab[i][j]
			}
		}
	}
	// Artificials are forbidden from re-entering: restrict entering columns
	// to structural + slack variables.
	if st := pivot(phase2, n+numSlack); st == LPUnbounded {
		return nil, 0, LPUnbounded
	}

	x = make([]float64, n)
	for i, b := range basis {
		if b < n {
			x[b] = tab[i][total]
		}
	}
	obj = 0
	for i := range x {
		// Clamp tiny numerical noise into [0,1].
		if x[i] < 0 {
			x[i] = 0
		}
		if x[i] > 1 {
			x[i] = 1
		}
		obj += c[i] * x[i]
	}
	return x, obj, LPOptimal
}
