// Package ilp provides a small, dependency-free exact solver for the
// binary integer linear programs Blaze formulates (§5.5, Eq. 5-6).
//
// The paper uses the commercial Gurobi optimizer; this reproduction
// implements the same functionality from scratch: a bounded-variable
// primal simplex for the LP relaxation, a warm-started branch-and-bound
// search over binary variables, and a specialized branch-and-bound 0/1
// knapsack fast path for the disk-unconstrained case where the Blaze ILP
// provably reduces to a knapsack (see internal/core).
package ilp

import (
	"fmt"
	"math"
)

// Relation is the comparison direction of a linear constraint.
type Relation int

const (
	// LE constrains a·x <= b.
	LE Relation = iota
	// GE constrains a·x >= b.
	GE
	// EQ constrains a·x == b.
	EQ
)

// Constraint is one linear constraint over the decision variables.
type Constraint struct {
	Coeffs []float64
	Rel    Relation
	RHS    float64
}

// LPStatus describes the outcome of an LP solve.
type LPStatus int

const (
	// LPOptimal means an optimal vertex was found.
	LPOptimal LPStatus = iota
	// LPInfeasible means the constraints admit no solution.
	LPInfeasible
	// LPUnbounded means the objective decreases without bound.
	LPUnbounded
)

func (s LPStatus) String() string {
	switch s {
	case LPOptimal:
		return "optimal"
	case LPInfeasible:
		return "infeasible"
	case LPUnbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("LPStatus(%d)", int(s))
	}
}

const eps = 1e-9

// wsStatus is the internal outcome of a workspace LP solve. It is wider
// than LPStatus: wsStuck reports that the pivot iteration cap was hit, a
// signal branch and bound handles by branching without a bound rather
// than trusting a half-converged relaxation.
type wsStatus int

const (
	wsOptimal wsStatus = iota
	wsInfeasible
	wsUnbounded
	wsStuck
)

// feasTol is the primal feasibility tolerance for basic-variable bounds.
// It is looser than the pivot eps because basic values accumulate
// floating-point drift across warm-started pivots.
const feasTol = 1e-7

// pivotRefreshLimit caps pivots applied to one tableau before the next
// solveCurrent forces a cold rebuild, bounding accumulated drift.
const pivotRefreshLimit = 20000

// degenerateLimit is how many consecutive degenerate pivots the Dantzig
// rule tolerates before the entering selection falls back to Bland's
// rule (which provably cannot cycle).
const degenerateLimit = 40

// workspace is a reusable bounded-variable simplex over one Problem.
//
// The key structural idea (tentpole part 1): the variable bounds
// 0 <= x_j <= 1 never appear in the constraint matrix. A nonbasic
// variable rests at either its lower or its upper bound (atUpper), the
// ratio test gains a third case (the entering variable flips to its
// opposite bound without any basis change), and basic values xB are
// maintained incrementally. The tableau is m×(n+slacks+m) instead of the
// dense solver's (m+n)×(n+slacks+artificials+1) — about a 4× area
// reduction before any pivoting on Blaze-shaped problems.
//
// The second structural idea (tentpole part 2): branching only edits the
// lo/hi arrays. The factorization tab = B⁻¹A stays algebraically valid
// under any bounds, so a child node inherits its parent's basis, patches
// nonbasic values in place (setBounds), and usually needs only a few
// phase-2 pivots. A cold rebuild with a phase-1 start (refresh) happens
// only when the inherited basis is primal infeasible under the new
// bounds or drift-guard limits trip.
type workspace struct {
	n        int // structural (decision) variables
	m        int // constraint rows
	numSlack int // one per LE/GE row
	total    int // n + numSlack + m (one artificial slot per row)

	// Immutable-ish problem data. A holds the equality form
	// (slack columns folded in); the artificial slot of row i is column
	// n+numSlack+i, whose sign is (re)set by refresh to make the
	// artificial start nonnegative.
	a [][]float64
	b []float64
	c []float64 // phase-2 costs over all columns (zeros past n)

	lo, hi []float64 // per-column box; branching edits structural entries

	// Mutable simplex state.
	tab     [][]float64 // B⁻¹A, m × total
	obj     []float64   // phase-2 reduced costs, maintained across pivots
	basis   []int       // row -> basic column
	colRow  []int       // column -> row, or -1 when nonbasic
	atUpper []bool      // nonbasic at upper bound (false for basics)
	xB      []float64   // basic-variable values
	artUsed []bool      // artificial columns activated by the last refresh
	valid   bool        // tab/basis/obj/xB initialized
	pivots  int         // pivots since last refresh (drift guard)
}

// newWorkspace assembles the equality-form matrix for p. It returns nil
// if any constraint row has the wrong arity (the caller maps that to
// LPInfeasible, matching the dense solver).
func newWorkspace(p Problem) *workspace {
	n := len(p.C)
	m := len(p.Constraints)
	numSlack := 0
	for _, con := range p.Constraints {
		if len(con.Coeffs) != n {
			return nil
		}
		if con.Rel != EQ {
			numSlack++
		}
	}
	total := n + numSlack + m
	w := &workspace{
		n:        n,
		m:        m,
		numSlack: numSlack,
		total:    total,
		a:        make([][]float64, m),
		b:        make([]float64, m),
		c:        make([]float64, total),
		lo:       make([]float64, total),
		hi:       make([]float64, total),
		tab:      make([][]float64, m),
		obj:      make([]float64, total),
		basis:    make([]int, m),
		colRow:   make([]int, total),
		atUpper:  make([]bool, total),
		xB:       make([]float64, m),
		artUsed:  make([]bool, m),
	}
	copy(w.c, p.C)
	slack := n
	for i, con := range p.Constraints {
		row := make([]float64, total)
		copy(row, con.Coeffs)
		switch con.Rel {
		case LE:
			row[slack] = 1
			slack++
		case GE:
			row[slack] = -1
			slack++
		}
		w.a[i] = row
		w.b[i] = con.RHS
		w.tab[i] = make([]float64, total)
	}
	for j := 0; j < n; j++ {
		w.lo[j], w.hi[j] = 0, 1
	}
	for j := n; j < n+numSlack; j++ {
		w.lo[j], w.hi[j] = 0, math.Inf(1)
	}
	// Artificial slots stay pinned to [0,0] until a refresh opens the
	// ones it needs for its phase 1.
	return w
}

// setBounds changes variable j's box, keeping the warm state coherent.
// A nonbasic variable is moved onto its nearest feasible bound with an
// incremental xB update; a basic variable keeps its current value and
// the next solveCurrent repairs any violation (via refresh). This is the
// whole cost of a branch-and-bound fix/unfix — no problem rebuild.
func (w *workspace) setBounds(j int, lo, hi float64) {
	if !w.valid {
		w.lo[j], w.hi[j] = lo, hi
		return
	}
	if w.colRow[j] >= 0 {
		w.lo[j], w.hi[j] = lo, hi
		return
	}
	old := w.lo[j]
	if w.atUpper[j] {
		old = w.hi[j]
	}
	w.lo[j], w.hi[j] = lo, hi
	nv := old
	if nv < lo {
		nv = lo
	}
	if nv > hi {
		nv = hi
	}
	w.atUpper[j] = hi > lo && nv == hi
	if d := nv - old; d != 0 {
		for i := 0; i < w.m; i++ {
			if a := w.tab[i][j]; a != 0 {
				w.xB[i] -= d * a
			}
		}
	}
}

// basicsFeasible reports whether every basic value respects its box.
func (w *workspace) basicsFeasible() bool {
	for i, bc := range w.basis {
		if w.xB[i] < w.lo[bc]-feasTol || w.xB[i] > w.hi[bc]+feasTol {
			return false
		}
	}
	return true
}

// solveCurrent optimizes under the current bounds. Warm path: if the
// inherited basis is still primal feasible, only phase-2 pivots run on
// the existing tableau and reduced costs. Cold path: full rebuild with a
// phase-1 start.
func (w *workspace) solveCurrent() wsStatus {
	if w.valid && w.pivots < pivotRefreshLimit && w.basicsFeasible() {
		st := w.pivotLoop(w.obj)
		if st != wsStuck {
			return st
		}
		// A stuck warm solve may just be drift; retry cold once.
	}
	return w.refresh()
}

// refresh rebuilds the tableau from the original matrix: all nonbasic
// columns drop to their lower bounds, each row becomes basic in its
// slack when that is feasible, and only the remaining rows open an
// artificial for a phase-1 solve. Iterative Blaze problems are usually
// slack-feasible at the root, so phase 1 is skipped entirely.
//
// The workspace is warm (valid) afterwards only when the solve reached
// optimality: an infeasible or stuck exit leaves open artificials or a
// stale reduced-cost row behind, and reusing that state as a warm basis
// would silently drop constraints.
func (w *workspace) refresh() wsStatus {
	st := w.rebuildAndSolve()
	w.valid = st == wsOptimal
	return st
}

func (w *workspace) rebuildAndSolve() wsStatus {
	w.valid = false
	w.pivots = 0
	for j := 0; j < w.total; j++ {
		w.colRow[j] = -1
		w.atUpper[j] = false
	}
	// Re-pin every artificial slot; refresh reopens the ones it needs.
	for i := 0; i < w.m; i++ {
		art := w.n + w.numSlack + i
		w.lo[art], w.hi[art] = 0, 0
		w.artUsed[i] = false
	}
	anyArt := false
	for i := 0; i < w.m; i++ {
		copy(w.tab[i], w.a[i])
		// Residual with all structural variables at their lower bounds
		// and slacks at zero.
		res := w.b[i]
		for j := 0; j < w.n; j++ {
			if w.lo[j] != 0 {
				res -= w.a[i][j] * w.lo[j]
			}
		}
		// Identify this row's slack column, if any.
		slackCol, sigma := -1, 0.0
		for j := w.n; j < w.n+w.numSlack; j++ {
			if w.a[i][j] != 0 {
				slackCol, sigma = j, w.a[i][j]
				break
			}
		}
		if slackCol >= 0 && res/sigma >= -feasTol {
			// Slack-basic start: feasible without an artificial.
			v := res / sigma
			if v < 0 {
				v = 0
			}
			if sigma != 1 {
				for k := range w.tab[i] {
					w.tab[i][k] /= sigma
				}
			}
			w.basis[i] = slackCol
			w.colRow[slackCol] = i
			w.xB[i] = v
			continue
		}
		// Artificial start: give the slot the sign of the residual so
		// the artificial begins at |res| >= 0.
		art := w.n + w.numSlack + i
		sgn := 1.0
		if res < 0 {
			sgn = -1
		}
		w.a[i][art] = sgn
		w.tab[i][art] = sgn
		if sgn < 0 {
			for k := range w.tab[i] {
				w.tab[i][k] = -w.tab[i][k]
			}
		}
		w.basis[i] = art
		w.colRow[art] = i
		w.xB[i] = math.Abs(res)
		w.lo[art], w.hi[art] = 0, math.Inf(1)
		w.artUsed[i] = true
		anyArt = true
	}

	if anyArt {
		// Phase 1: minimize the sum of the opened artificials. Entering
		// columns are restricted to structural+slack (pivotLoop), so a
		// driven-out artificial never returns.
		ph1 := make([]float64, w.total)
		for i := 0; i < w.m; i++ {
			if w.artUsed[i] {
				ph1[w.n+w.numSlack+i] = 1
			}
		}
		for i, bc := range w.basis {
			if ph1[bc] != 0 {
				f := ph1[bc]
				for k := 0; k < w.total; k++ {
					ph1[k] -= f * w.tab[i][k]
				}
			}
		}
		switch w.pivotLoop(ph1) {
		case wsUnbounded:
			// The phase-1 objective is bounded below by zero; reaching
			// here means numerical trouble. Treat as infeasible, like
			// the dense solver.
			return wsInfeasible
		case wsStuck:
			return wsStuck
		}
		infeas := 0.0
		for i, bc := range w.basis {
			if bc >= w.n+w.numSlack {
				infeas += w.xB[i]
			}
		}
		if infeas > 1e-6 {
			return wsInfeasible
		}
		// Close the artificials. Ones still basic sit at ~0 with a [0,0]
		// box; they can leave later through degenerate pivots but can
		// never take a nonzero value again.
		for i := 0; i < w.m; i++ {
			art := w.n + w.numSlack + i
			w.lo[art], w.hi[art] = 0, 0
			if w.colRow[art] == -1 {
				w.atUpper[art] = false
			}
		}
	}

	// Phase 2 with freshly derived reduced costs.
	copy(w.obj, w.c)
	for k := w.n; k < w.total; k++ {
		w.obj[k] = 0
	}
	for i, bc := range w.basis {
		if w.obj[bc] != 0 {
			f := w.obj[bc]
			for k := 0; k < w.total; k++ {
				w.obj[k] -= f * w.tab[i][k]
			}
		}
	}
	return w.pivotLoop(w.obj)
}

// pivotLoop runs bounded-variable primal simplex iterations on the
// given reduced-cost row until optimality, unboundedness, or the
// iteration cap. Entering columns are restricted to structural and
// slack variables; artificial slots never enter (their boxes are [0,0]
// or they are phase-1 residents on their way out).
func (w *workspace) pivotLoop(obj []float64) wsStatus {
	enterLimit := w.n + w.numSlack
	maxIter := 400 + 60*(w.m+w.total)
	degen := 0
	useBland := false
	for iter := 0; iter < maxIter; iter++ {
		// Entering variable. Dantzig (steepest reduced cost) normally;
		// Bland's rule (first eligible) after a degenerate stall, which
		// guarantees no cycling.
		col, dir := -1, 1.0
		bestScore := eps
		for j := 0; j < enterLimit; j++ {
			if w.colRow[j] >= 0 || w.hi[j]-w.lo[j] <= eps {
				continue // basic, or fixed by branching
			}
			d := obj[j]
			if !w.atUpper[j] && d < -eps {
				if useBland {
					col, dir = j, 1
					break
				}
				if -d > bestScore {
					bestScore, col, dir = -d, j, 1
				}
			} else if w.atUpper[j] && d > eps {
				if useBland {
					col, dir = j, -1
					break
				}
				if d > bestScore {
					bestScore, col, dir = d, j, -1
				}
			}
		}
		if col == -1 {
			return wsOptimal
		}

		// Three-way ratio test: (a) a basic variable reaches its lower
		// bound, (b) a basic variable reaches its finite upper bound,
		// (c) the entering variable flips to its own opposite bound —
		// the case that replaces the dense solver's n explicit <= 1
		// rows. The flip wins ties (no basis change, no fill-in).
		t := math.Inf(1)
		if span := w.hi[col] - w.lo[col]; !math.IsInf(span, 1) {
			t = span
		}
		leave := -1 // -1 means bound flip
		leaveAtUpper := false
		for i := 0; i < w.m; i++ {
			a := dir * w.tab[i][col]
			bc := w.basis[i]
			if a > eps {
				ti := (w.xB[i] - w.lo[bc]) / a
				if ti < 0 {
					ti = 0
				}
				if ti < t-eps || (ti < t+eps && leave >= 0 && bc < w.basis[leave]) {
					t, leave, leaveAtUpper = ti, i, false
				}
			} else if a < -eps && !math.IsInf(w.hi[bc], 1) {
				ti := (w.hi[bc] - w.xB[i]) / -a
				if ti < 0 {
					ti = 0
				}
				if ti < t-eps || (ti < t+eps && leave >= 0 && bc < w.basis[leave]) {
					t, leave, leaveAtUpper = ti, i, true
				}
			}
		}
		if math.IsInf(t, 1) {
			return wsUnbounded
		}
		if t <= eps {
			degen++
			if degen > degenerateLimit {
				useBland = true
			}
		} else {
			degen = 0
			useBland = false
		}

		if leave == -1 {
			// Bound flip: x_col moves across its whole box; basics
			// absorb the move; the basis and reduced costs are
			// untouched.
			delta := dir * t
			for i := 0; i < w.m; i++ {
				if a := w.tab[i][col]; a != 0 {
					w.xB[i] -= delta * a
				}
			}
			w.atUpper[col] = !w.atUpper[col]
			continue
		}

		// Basis change: entering advances by t, the leaving variable
		// lands exactly on one of its bounds.
		enterFrom := w.lo[col]
		if w.atUpper[col] {
			enterFrom = w.hi[col]
		}
		enterVal := enterFrom + dir*t
		for i := 0; i < w.m; i++ {
			if i == leave {
				continue
			}
			if a := w.tab[i][col]; a != 0 {
				w.xB[i] -= dir * t * a
			}
		}
		leaveCol := w.basis[leave]
		w.colRow[leaveCol] = -1
		w.atUpper[leaveCol] = leaveAtUpper

		piv := w.tab[leave][col]
		row := w.tab[leave]
		inv := 1 / piv
		for k := range row {
			row[k] *= inv
		}
		for i := 0; i < w.m; i++ {
			if i == leave {
				continue
			}
			if f := w.tab[i][col]; f != 0 {
				ri := w.tab[i]
				for k := range ri {
					ri[k] -= f * row[k]
				}
			}
		}
		if f := obj[col]; f != 0 {
			for k := range obj {
				obj[k] -= f * row[k]
			}
		}
		w.basis[leave] = col
		w.colRow[col] = leave
		w.atUpper[col] = false
		w.xB[leave] = enterVal
		w.pivots++
	}
	return wsStuck
}

// extractX reads the current structural solution: basics from xB,
// nonbasics from whichever bound they rest on. Values are clamped into
// their box to shed pivot noise.
func (w *workspace) extractX(x []float64) {
	for j := 0; j < w.n; j++ {
		var v float64
		if r := w.colRow[j]; r >= 0 {
			v = w.xB[r]
		} else if w.atUpper[j] {
			v = w.hi[j]
		} else {
			v = w.lo[j]
		}
		if v < w.lo[j] {
			v = w.lo[j]
		}
		if v > w.hi[j] {
			v = w.hi[j]
		}
		x[j] = v
	}
}

// objValue is c·x for the current structural solution.
func (w *workspace) objValue(x []float64) float64 {
	obj := 0.0
	for j := 0; j < w.n; j++ {
		obj += w.c[j] * x[j]
	}
	return obj
}

// solveLP minimizes c·x subject to the given constraints and
// 0 <= x_i <= 1, via the bounded-variable simplex. It exists for unit
// tests and one-shot callers; branch and bound uses the workspace
// directly so bounds edits stay warm.
func solveLP(c []float64, cons []Constraint) (x []float64, obj float64, status LPStatus) {
	w := newWorkspace(Problem{C: c, Constraints: cons})
	if w == nil {
		return nil, 0, LPInfeasible
	}
	switch w.solveCurrent() {
	case wsInfeasible:
		return nil, 0, LPInfeasible
	case wsUnbounded, wsStuck:
		return nil, 0, LPUnbounded
	}
	x = make([]float64, len(c))
	w.extractX(x)
	return x, w.objValue(x), LPOptimal
}
