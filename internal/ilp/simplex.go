// Package ilp provides a small, dependency-free exact solver for the
// binary integer linear programs Blaze formulates (§5.5, Eq. 5-6).
//
// The paper uses the commercial Gurobi optimizer; this reproduction
// implements the same functionality from scratch: a dense two-phase
// primal simplex for the LP relaxation, a branch-and-bound search over
// binary variables, and a specialized branch-and-bound 0/1 knapsack fast
// path for the disk-unconstrained case where the Blaze ILP provably
// reduces to a knapsack (see internal/core).
package ilp

import (
	"fmt"
	"math"
)

// Relation is the comparison direction of a linear constraint.
type Relation int

const (
	// LE constrains a·x <= b.
	LE Relation = iota
	// GE constrains a·x >= b.
	GE
	// EQ constrains a·x == b.
	EQ
)

// Constraint is one linear constraint over the decision variables.
type Constraint struct {
	Coeffs []float64
	Rel    Relation
	RHS    float64
}

// LPStatus describes the outcome of an LP solve.
type LPStatus int

const (
	// LPOptimal means an optimal vertex was found.
	LPOptimal LPStatus = iota
	// LPInfeasible means the constraints admit no solution.
	LPInfeasible
	// LPUnbounded means the objective decreases without bound.
	LPUnbounded
)

func (s LPStatus) String() string {
	switch s {
	case LPOptimal:
		return "optimal"
	case LPInfeasible:
		return "infeasible"
	case LPUnbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("LPStatus(%d)", int(s))
	}
}

const eps = 1e-9

// solveLP minimizes c·x subject to the given constraints and 0 <= x_i <= 1
// for every variable, using a two-phase dense simplex with Bland's rule
// (which guarantees termination by preventing cycling).
//
// The variable upper bounds are appended internally as <= 1 rows, so
// callers pass only the structural constraints.
func solveLP(c []float64, cons []Constraint) (x []float64, obj float64, status LPStatus) {
	n := len(c)
	// Assemble the full constraint list including variable upper bounds.
	all := make([]Constraint, 0, len(cons)+n)
	all = append(all, cons...)
	for i := 0; i < n; i++ {
		row := make([]float64, n)
		row[i] = 1
		all = append(all, Constraint{Coeffs: row, Rel: LE, RHS: 1})
	}
	m := len(all)

	// Standard form: every row gets RHS >= 0; <= rows get a slack,
	// >= rows get a surplus and an artificial, == rows get an artificial.
	type rowSpec struct {
		coeffs []float64
		rhs    float64
		rel    Relation
	}
	rows := make([]rowSpec, m)
	numSlack, numArt := 0, 0
	for i, con := range all {
		if len(con.Coeffs) != n {
			return nil, 0, LPInfeasible
		}
		coeffs := append([]float64(nil), con.Coeffs...)
		rhs := con.RHS
		rel := con.Rel
		if rhs < 0 {
			for j := range coeffs {
				coeffs[j] = -coeffs[j]
			}
			rhs = -rhs
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		rows[i] = rowSpec{coeffs, rhs, rel}
		switch rel {
		case LE:
			numSlack++
		case GE:
			numSlack++
			numArt++
		case EQ:
			numArt++
		}
	}

	total := n + numSlack + numArt
	// tab has m rows of (total coefficients + rhs).
	tab := make([][]float64, m)
	basis := make([]int, m)
	slackIdx, artIdx := n, n+numSlack
	artCols := make([]int, 0, numArt)
	for i, r := range rows {
		row := make([]float64, total+1)
		copy(row, r.coeffs)
		row[total] = r.rhs
		switch r.rel {
		case LE:
			row[slackIdx] = 1
			basis[i] = slackIdx
			slackIdx++
		case GE:
			row[slackIdx] = -1
			slackIdx++
			row[artIdx] = 1
			basis[i] = artIdx
			artCols = append(artCols, artIdx)
			artIdx++
		case EQ:
			row[artIdx] = 1
			basis[i] = artIdx
			artCols = append(artCols, artIdx)
			artIdx++
		}
		tab[i] = row
	}

	pivot := func(obj []float64, allowed int) LPStatus {
		for {
			// Entering variable: Bland's rule — smallest index with a
			// negative reduced cost.
			col := -1
			for j := 0; j < allowed; j++ {
				if obj[j] < -eps {
					col = j
					break
				}
			}
			if col == -1 {
				return LPOptimal
			}
			// Leaving variable: minimum ratio, ties by smallest basis index.
			row := -1
			best := math.Inf(1)
			for i := 0; i < m; i++ {
				a := tab[i][col]
				if a > eps {
					ratio := tab[i][total] / a
					if ratio < best-eps || (math.Abs(ratio-best) <= eps && (row == -1 || basis[i] < basis[row])) {
						best = ratio
						row = i
					}
				}
			}
			if row == -1 {
				return LPUnbounded
			}
			// Pivot on (row, col).
			p := tab[row][col]
			for j := 0; j <= total; j++ {
				tab[row][j] /= p
			}
			for i := 0; i < m; i++ {
				if i == row {
					continue
				}
				f := tab[i][col]
				if f != 0 {
					for j := 0; j <= total; j++ {
						tab[i][j] -= f * tab[row][j]
					}
				}
			}
			f := obj[col]
			if f != 0 {
				for j := 0; j <= total; j++ {
					obj[j] -= f * tab[row][j]
				}
			}
			basis[row] = col
		}
	}

	// Phase 1: minimize the sum of artificial variables.
	if numArt > 0 {
		phase1 := make([]float64, total+1)
		for _, j := range artCols {
			phase1[j] = 1
		}
		// Express the phase-1 objective in terms of non-basic variables.
		for i, b := range basis {
			if phase1[b] != 0 {
				f := phase1[b]
				for j := 0; j <= total; j++ {
					phase1[j] -= f * tab[i][j]
				}
			}
		}
		if st := pivot(phase1, total); st == LPUnbounded {
			return nil, 0, LPInfeasible
		}
		if -phase1[total] > 1e-6 {
			return nil, 0, LPInfeasible
		}
		// Drive any artificial variables still in the basis out of it.
		for i := 0; i < m; i++ {
			if basis[i] >= n+numSlack {
				moved := false
				for j := 0; j < n+numSlack; j++ {
					if math.Abs(tab[i][j]) > eps {
						p := tab[i][j]
						for k := 0; k <= total; k++ {
							tab[i][k] /= p
						}
						for r := 0; r < m; r++ {
							if r == i {
								continue
							}
							f := tab[r][j]
							if f != 0 {
								for k := 0; k <= total; k++ {
									tab[r][k] -= f * tab[i][k]
								}
							}
						}
						basis[i] = j
						moved = true
						break
					}
				}
				if !moved {
					// Redundant row; leave the artificial at zero.
					continue
				}
			}
		}
	}

	// Phase 2: minimize the real objective over structural+slack columns.
	phase2 := make([]float64, total+1)
	copy(phase2, c)
	for i, b := range basis {
		if b < len(c) && phase2[b] != 0 {
			f := phase2[b]
			for j := 0; j <= total; j++ {
				phase2[j] -= f * tab[i][j]
			}
		}
	}
	// Artificials are forbidden from re-entering: restrict entering columns
	// to structural + slack variables.
	if st := pivot(phase2, n+numSlack); st == LPUnbounded {
		return nil, 0, LPUnbounded
	}

	x = make([]float64, n)
	for i, b := range basis {
		if b < n {
			x[b] = tab[i][total]
		}
	}
	obj = 0
	for i := range x {
		// Clamp tiny numerical noise into [0,1].
		if x[i] < 0 {
			x[i] = 0
		}
		if x[i] > 1 {
			x[i] = 1
		}
		obj += c[i] * x[i]
	}
	return x, obj, LPOptimal
}
