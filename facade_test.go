package blaze_test

// Black-box tests for the public facade: the system-id registry runs
// end-to-end, the ILP window is reachable at every documented value, and
// the re-exported fault/event-log types drive a faulted run without
// naming internal packages.

import (
	"bytes"
	"reflect"
	"testing"

	"blaze"
	"blaze/internal/cachepolicy"
)

// TestAllSystemIDsRunEndToEnd runs every declared SystemID — the twelve
// named systems plus one PolicySystem id per registered eviction policy —
// on a tiny workload, and checks the unknown-id error path.
func TestAllSystemIDsRunEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full system sweep skipped in -short mode")
	}
	type sysCase struct {
		sys     blaze.SystemID
		wantErr bool
	}
	tests := []sysCase{
		{blaze.SysSparkMem, false},
		{blaze.SysSparkMemDisk, false},
		{blaze.SysSparkAlluxio, false},
		{blaze.SysLRC, false},
		{blaze.SysMRD, false},
		{blaze.SysLRCMem, false},
		{blaze.SysMRDMem, false},
		{blaze.SysAutoCache, false},
		{blaze.SysCostAware, false},
		{blaze.SysBlaze, false},
		{blaze.SysBlazeMem, false},
		{blaze.SysBlazeNoProfile, false},
		{"no-such-system", true},
		{blaze.PolicySystem("no-such-policy"), true},
	}
	for _, p := range cachepolicy.Names() {
		tests = append(tests, sysCase{blaze.PolicySystem(p), false})
	}
	for _, tc := range tests {
		t.Run(string(tc.sys), func(t *testing.T) {
			r, err := blaze.Run(blaze.RunConfig{
				System:   tc.sys,
				Workload: blaze.LR,
				Scale:    0.5,
			})
			if tc.wantErr {
				if err == nil {
					t.Fatal("expected an error for an unknown id")
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if r.Metrics.ACT <= 0 || r.Metrics.Jobs == 0 {
				t.Fatalf("degenerate run: ACT=%v jobs=%d", r.Metrics.ACT, r.Metrics.Jobs)
			}
		})
	}
}

// TestILPWindowCurrentJobOnly is the end-to-end acceptance test for the
// ILPWindow redesign: a window-0 run must actually reach the ILP.
func TestILPWindowCurrentJobOnly(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	r, err := blaze.Run(blaze.RunConfig{
		System:    blaze.SysBlaze,
		Workload:  blaze.LR,
		ILPWindow: blaze.ILPWindow(0),
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Metrics.ILPSolves == 0 {
		t.Fatal("window-0 run never reached the ILP")
	}
}

func TestParseFaultClassesFacade(t *testing.T) {
	got, err := blaze.ParseFaultClasses("exec-death,bucket")
	if err != nil {
		t.Fatal(err)
	}
	want := []blaze.FaultClass{blaze.FaultExecutorDeath, blaze.FaultBucketLoss}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ParseFaultClasses = %v, want %v", got, want)
	}
	all, err := blaze.ParseFaultClasses("all")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(all, blaze.AllFaultClasses()) {
		t.Fatalf("\"all\" = %v, want %v", all, blaze.AllFaultClasses())
	}
	if _, err := blaze.ParseFaultClasses("meteor"); err == nil {
		t.Fatal("unknown class must error")
	}
}

// TestFacadeFaultInjection drives the new fault classes purely through
// the facade types: executor deaths and bucket losses injected into a
// real workload, with the event log round-tripped through JSON.
func TestFacadeFaultInjection(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	log := blaze.NewEventLog()
	r, err := blaze.Run(blaze.RunConfig{
		System:   blaze.SysSparkMemDisk,
		Workload: blaze.LR,
		EventLog: log,
		Faults: &blaze.FaultConfig{
			Seed:    3,
			Classes: []blaze.FaultClass{blaze.FaultExecutorDeath, blaze.FaultBucketLoss},
			Every:   2,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	m := r.Metrics
	if m.FaultsInjected == 0 {
		t.Fatal("no faults injected")
	}
	if m.ExecutorDeaths+m.FaultBucketsLost != m.FaultsInjected {
		t.Fatalf("injected %d faults but deaths=%d buckets=%d",
			m.FaultsInjected, m.ExecutorDeaths, m.FaultBucketsLost)
	}
	if m.ExecutorDeaths > 0 && m.MigratedPartitions == 0 {
		t.Fatal("executor died but no partitions migrated")
	}
	if m.TotalFaultRecovery() <= 0 {
		t.Fatal("no fault recovery attributed")
	}

	var buf bytes.Buffer
	if err := log.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := blaze.ReadEventLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != log.Len() {
		t.Fatalf("JSON round trip lost events: %d -> %d", log.Len(), back.Len())
	}
	sum := blaze.SummarizeEventLog(back)
	faults, migrated := 0, 0
	for _, j := range sum.Jobs {
		faults += j.Faults
		migrated += j.Migrated
	}
	if faults != m.FaultsInjected {
		t.Fatalf("summary counted %d faults, metrics %d", faults, m.FaultsInjected)
	}
	if migrated != m.MigratedPartitions {
		t.Fatalf("summary counted %d migrated slots, metrics %d", migrated, m.MigratedPartitions)
	}
}
