package blaze_test

// Recovery-equivalence harness (the acceptance test for the fault
// injector): every caching controller, run under every fault class at
// both job and stage boundaries, must produce action results identical
// to its own fault-free run — and to the local reference execution —
// with recovery time attributed whenever data was actually lost.

import (
	"reflect"
	"sort"
	"testing"

	"blaze/internal/core"
	"blaze/internal/engine"
	"blaze/internal/enginetest"
)

func recoveryControllers() map[string]func() engine.Controller {
	return map[string]func() engine.Controller{
		"spark-mem":     func() engine.Controller { return engine.NewSparkMemOnly() },
		"spark-memdisk": func() engine.Controller { return engine.NewSparkMemDisk() },
		"lrc":           func() engine.Controller { return engine.NewLRC(engine.MemDisk) },
		"mrd":           func() engine.Controller { return engine.NewMRD(engine.MemDisk) },
		"blaze":         func() engine.Controller { return core.NewBlaze() },
	}
}

// TestRecoveryEquivalence is the full matrix: controllers x fault
// schedules x seeds. Faults may change how work gets done (recomputation,
// disk reloads, stage resubmission) but never what is computed.
func TestRecoveryEquivalence(t *testing.T) {
	names := make([]string, 0)
	ctls := recoveryControllers()
	for name := range ctls {
		names = append(names, name)
	}
	sort.Strings(names)

	for seed := int64(1); seed <= 4; seed++ {
		want := enginetest.RefChecksums(seed)
		schedules := enginetest.FaultSchedules(seed)
		scheduleNames := make([]string, 0, len(schedules))
		for s := range schedules {
			scheduleNames = append(scheduleNames, s)
		}
		sort.Strings(scheduleNames)

		for _, name := range names {
			mk := ctls[name]
			// Fault-free baseline on the simulated cluster must already
			// match the local reference runner.
			base, _, err := enginetest.RunRandomProgram(seed, enginetest.ClusterSpec{}, mk(), nil)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(base, want) {
				t.Fatalf("seed %d %s: fault-free run diverges from reference: %v != %v", seed, name, base, want)
			}
			faults, lost := 0, 0
			for _, sname := range scheduleNames {
				cfg := schedules[sname]
				got, m, err := enginetest.RunRandomProgram(seed, enginetest.ClusterSpec{}, mk(), &cfg)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("seed %d %s under %s: results diverge: %v != %v", seed, name, sname, got, want)
					continue
				}
				faults += m.FaultsInjected
				lost += m.FaultBlocksLost + m.FaultShufflesLost
			}
			// The matrix must actually exercise recovery, not pass
			// vacuously on schedules that never found a victim.
			if faults == 0 {
				t.Errorf("seed %d %s: no faults injected across any schedule", seed, name)
			}
			if lost == 0 {
				t.Errorf("seed %d %s: no state destroyed across any schedule", seed, name)
			}
		}
	}
}

// TestRecoveryRunsAreDeterministic repeats one faulty run per fault
// class for one controller and requires identical metrics, not just
// identical results.
func TestRecoveryRunsAreDeterministic(t *testing.T) {
	const seed = 2
	for sname, cfg := range enginetest.FaultSchedules(seed) {
		cfg := cfg
		s1, m1, err := enginetest.RunRandomProgram(seed, enginetest.ClusterSpec{}, engine.NewSparkMemDisk(), &cfg)
		if err != nil {
			t.Fatal(err)
		}
		s2, m2, err := enginetest.RunRandomProgram(seed, enginetest.ClusterSpec{}, engine.NewSparkMemDisk(), &cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(s1, s2) {
			t.Fatalf("%s: results differ across identical runs", sname)
		}
		if m1.ACT != m2.ACT || m1.FaultsInjected != m2.FaultsInjected ||
			m1.TotalFaultRecovery() != m2.TotalFaultRecovery() {
			t.Fatalf("%s: metrics differ across identical runs: ACT %v/%v faults %d/%d recovery %v/%v",
				sname, m1.ACT, m2.ACT, m1.FaultsInjected, m2.FaultsInjected,
				m1.TotalFaultRecovery(), m2.TotalFaultRecovery())
		}
	}
}
