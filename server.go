package blaze

// This file is the public surface of the multi-tenant job server: a
// long-lived Server admitting many concurrent applications against one
// shared executor pool and one shared cache, with fair-share admission,
// per-tenant memory quotas and cluster-wide cache arbitration. See
// internal/server for the scheduling machinery and DESIGN.md ("Job
// server") for the design. cmd/blazed wraps this API in an HTTP daemon.

import (
	"context"
	"errors"
	"fmt"
	"time"

	"blaze/internal/core"
	"blaze/internal/dataflow"
	"blaze/internal/engine"
	"blaze/internal/faults"
	"blaze/internal/server"
)

// TenantConfig declares one tenant sharing a Server: its name, its
// fair-share weight (default 1) and its cluster-wide memory quota in
// bytes (0 = unlimited).
type TenantConfig = server.TenantConfig

// TenantStats is one tenant's share of ServerStats: session counts,
// jobs granted by the fair-share scheduler, aggregate ACT and quota
// accounting.
type TenantStats = server.TenantStats

// ServerStats is a point-in-time snapshot of a Server.
type ServerStats = server.Stats

// ErrCancelled is returned by JobHandle.Wait and JobHandle.Result when
// the job was cancelled before completing.
var ErrCancelled = server.ErrCancelled

// ErrServerClosed is returned by Server.Submit after Close.
var ErrServerClosed = server.ErrClosed

// ServerConfig describes a job server: the shared pool's shape and the
// multi-tenancy policies.
type ServerConfig struct {
	// Executors, Cores and MemoryPerExecutor shape the shared pool.
	// Executors defaults to 8 and Cores to 1, like RunConfig; the memory
	// capacity must be explicit — a long-lived server hosting arbitrary
	// workloads has no single workload to calibrate against.
	Executors         int
	Cores             int
	MemoryPerExecutor int64
	// Parallelism is the default engine parallelism for submissions that
	// do not set their own (0 = all CPUs). It never changes metrics or
	// event logs, only wall-clock time.
	Parallelism int
	// Tenants declares the tenant set. When non-empty, every submission
	// must name one of them; when empty, any tenant name is admitted
	// with weight 1 and no quota.
	Tenants []TenantConfig
	// MaxActiveSessions bounds how many submissions run concurrently;
	// excess submissions queue per tenant (0 = unbounded).
	MaxActiveSessions int
	// Arbitrate enables cluster-wide cache arbitration: each Blaze
	// session's job-start ILP is re-run over the union of all admitted
	// sessions' candidate sets, weighted by tenant fair share, so the
	// shared cache is optimized for the cluster rather than per job.
	Arbitrate bool
	// EventLog, when non-nil, receives the server's own events
	// (session_start, session_end, arbitration); per-job execution
	// events go to each JobSpec's EventLog.
	EventLog *EventLog
}

// JobSpec describes one application submitted to a Server. It is the
// multi-tenant analogue of RunConfig: the same system/workload/knob
// surface, minus the cluster shape (the server owns the pool) and plus
// the owning tenant.
type JobSpec struct {
	// Tenant names the owning tenant (must be declared when the server
	// has an explicit tenant set).
	Tenant string
	// System and Workload select what to run, as in RunConfig.
	System   SystemID
	Workload WorkloadID
	// Scale scales the input size (default 1.0).
	Scale float64
	// ProfileScale is the dependency-extraction sample fraction for the
	// Blaze systems (default 0.02).
	ProfileScale float64
	// CostParams overrides the cost model by value; the zero value uses
	// EvalParams with the workload's serialization factor.
	CostParams CostParams
	// DiskCapacity adds the per-executor disk constraint to the Blaze
	// ILP when positive.
	DiskCapacity int64
	// ILPWindow selects the Blaze ILP's successor-job window, as in
	// RunConfig: ILPWindowDefault keeps the default of 1,
	// ILPWindowCurrentJobOnly disables lookahead, positive values widen
	// the horizon.
	ILPWindow int
	// EventLog, when non-nil, records this job's execution events.
	EventLog *EventLog
	// Faults attaches a deterministic fault-injection schedule.
	Faults *FaultConfig
	// Resilience tunes the transient-failure machinery.
	Resilience Resilience
	// Parallelism overrides the server's default engine parallelism for
	// this job when positive.
	Parallelism int
}

// Server is a multi-tenant job server: many concurrent applications,
// one shared executor pool, one shared cache. Create one with
// NewServer, submit applications with Submit, observe with Stats and
// shut down with Close.
type Server struct {
	srv *server.Server
}

// NewServer creates a job server and its shared executor pool.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Executors == 0 {
		cfg.Executors = 8
	}
	if cfg.MemoryPerExecutor <= 0 {
		return nil, errors.New("blaze: ServerConfig.MemoryPerExecutor must be positive (a shared pool has no single workload to calibrate against)")
	}
	srv, err := server.New(server.Config{
		Executors:         cfg.Executors,
		CoresPerExecutor:  cfg.Cores,
		MemoryPerExecutor: cfg.MemoryPerExecutor,
		Parallelism:       cfg.Parallelism,
		Tenants:           cfg.Tenants,
		MaxActiveSessions: cfg.MaxActiveSessions,
		Arbitrate:         cfg.Arbitrate,
		EventLog:          cfg.EventLog,
	})
	if err != nil {
		return nil, err
	}
	return &Server{srv: srv}, nil
}

// Submit admits an application and returns a handle to it. The
// application runs asynchronously against the shared pool under the
// server's fair-share scheduler; JobHandle.Wait or JobHandle.Result
// blocks for it. Cancelling ctx cancels the job (effective at its next
// job boundary, like JobHandle.Cancel).
func (s *Server) Submit(ctx context.Context, spec JobSpec) (*JobHandle, error) {
	rc := RunConfig{
		System:       spec.System,
		Workload:     spec.Workload,
		Scale:        spec.Scale,
		ProfileScale: spec.ProfileScale,
		CostParams:   spec.CostParams,
		DiskCapacity: spec.DiskCapacity,
		ILPWindow:    spec.ILPWindow,
		Faults:       spec.Faults,
		Resilience:   spec.Resilience,
		Parallelism:  spec.Parallelism,
	}.withDefaults()
	if err := rc.Validate(); err != nil {
		return nil, err
	}
	wspec, err := Workload(rc.Workload)
	if err != nil {
		return nil, err
	}
	params := EvalParams(wspec.SerFactor)
	if !rc.CostParams.IsZero() {
		params = rc.CostParams
	}
	sys, err := buildSystem(rc, wspec)
	if err != nil {
		return nil, err
	}
	var hook engine.Hook
	if spec.Faults != nil {
		hook = faults.New(*spec.Faults)
	}
	var profiling time.Duration
	if sys.profiled {
		profiling = core.DefaultProfilingOverhead
	}
	sess, err := s.srv.Submit(server.JobSpec{
		Tenant: spec.Tenant,
		Driver: func(dctx *dataflow.Context) {
			if sys.annotated {
				wspec.Annotated(dctx, rc.Scale)
			} else {
				wspec.Plain(dctx, rc.Scale)
			}
		},
		Controller:        sys.ctl,
		Params:            params,
		AlluxioMode:       sys.alluxio,
		ProfilingOverhead: profiling,
		EventLog:          spec.EventLog,
		Hook:              hook,
		Resilience:        spec.Resilience,
		Parallelism:       spec.Parallelism,
	})
	if err != nil {
		return nil, err
	}
	h := &JobHandle{sess: sess, system: rc.System, workload: rc.Workload}
	if ctx != nil && ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				sess.Cancel()
			case <-sess.Done():
			}
		}()
	}
	return h, nil
}

// Stats snapshots the server's accounting: active and queued sessions,
// cluster-wide arbitration count, and per-tenant session counts, jobs
// granted, aggregate ACT and quota usage/peak/rejections.
func (s *Server) Stats() ServerStats { return s.srv.Stats() }

// Close stops admission, cancels queued (not yet started) jobs and
// waits for running jobs to drain.
func (s *Server) Close() { s.srv.Close() }

// Shutdown is graceful Close with a deadline: admission stops and
// queued jobs are cancelled immediately, then running jobs get until
// ctx expires to drain. Past the deadline they are cancelled too —
// effective at their next job boundary — and Shutdown returns ctx.Err()
// after the forced drain completes (nil when everything drained in
// time). Streaming sessions idle between windows are not reachable by
// cancellation; their clients must close them for the drain to finish.
func (s *Server) Shutdown(ctx context.Context) error { return s.srv.Shutdown(ctx) }

// JobHandle is one submitted application.
type JobHandle struct {
	sess     *server.Session
	system   SystemID
	workload WorkloadID
}

// ID returns the job's server-wide session index.
func (h *JobHandle) ID() int { return h.sess.ID() }

// Tenant returns the owning tenant.
func (h *JobHandle) Tenant() string { return h.sess.Tenant() }

// Done returns a channel closed when the job completes.
func (h *JobHandle) Done() <-chan struct{} { return h.sess.Done() }

// Wait blocks until the job completes and returns its error
// (ErrCancelled for cancelled jobs, nil on success).
func (h *JobHandle) Wait() error { return h.sess.Wait() }

// Cancel requests cancellation. Queued jobs never start; running jobs
// unwind at their next job boundary (the job step in flight completes —
// jobs are the atomic scheduling unit).
func (h *JobHandle) Cancel() { h.sess.Cancel() }

// Result waits for the job and returns its Result, exactly as Run
// would have returned it (MemoryPerExecutor reports the shared pool's
// per-executor capacity).
func (h *JobHandle) Result() (*Result, error) {
	if err := h.sess.Wait(); err != nil {
		return nil, err
	}
	m := h.sess.Metrics()
	if m == nil {
		return nil, fmt.Errorf("blaze: job %d finished without metrics", h.sess.ID())
	}
	return &Result{System: h.system, Workload: h.workload, Metrics: m, MemoryPerExecutor: h.sess.MemoryPerExecutor()}, nil
}
