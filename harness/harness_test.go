package harness

import (
	"strings"
	"sync"
	"testing"

	"blaze"
)

// shared harness: the figure experiments reuse each other's runs, so the
// whole test file shares one memoized harness.
var (
	sharedOnce sync.Once
	shared     *Harness
)

func h(t *testing.T) *Harness {
	t.Helper()
	if testing.Short() {
		t.Skip("harness experiments are skipped in -short mode")
	}
	sharedOnce.Do(func() { shared = New() })
	return shared
}

func TestMatrixGetAndRender(t *testing.T) {
	m := &Matrix{
		Title: "t", Caption: "c", Unit: "u",
		Cols: []string{"a", "b"},
		Rows: []string{"r1"},
		Data: [][]float64{{1.5, 2.5}},
	}
	if v, ok := m.Get("r1", "b"); !ok || v != 2.5 {
		t.Fatalf("Get = %v %v", v, ok)
	}
	if _, ok := m.Get("zz", "b"); ok {
		t.Fatal("missing row should not resolve")
	}
	out := m.Render()
	for _, want := range []string{"t", "c", "a", "b", "r1", "1.500", "2.500", "[u]"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestUnknownFigure(t *testing.T) {
	if _, err := New().Figure("99"); err == nil {
		t.Fatal("unknown figure should error")
	}
}

// Fig. 3 shape: eviction volumes differ across executors (skew).
func TestFig3EvictionSkew(t *testing.T) {
	m, err := h(t).Fig3()
	if err != nil {
		t.Fatal(err)
	}
	min, max := m.Data[0][0], m.Data[0][0]
	for _, row := range m.Data {
		if row[0] < min {
			min = row[0]
		}
		if row[0] > max {
			max = row[0]
		}
	}
	if max <= 0 {
		t.Fatal("no evictions recorded")
	}
	if max < min*1.15 {
		t.Fatalf("expected cross-executor eviction skew, got min=%v max=%v", min, max)
	}
}

// Fig. 4 shape: disk I/O is a major cost for the graph workloads under
// MEM+DISK Spark, largest for PageRank and smallest for LR (§3.2).
func TestFig4DiskShares(t *testing.T) {
	m, err := h(t).Fig4()
	if err != nil {
		t.Fatal(err)
	}
	share := func(w string) float64 {
		v, ok := m.Get(w, "DiskShare")
		if !ok {
			t.Fatalf("missing row %s", w)
		}
		return v
	}
	if share("PageRank") < 0.4 {
		t.Fatalf("PageRank disk share %v should dominate", share("PageRank"))
	}
	if share("LogisticRegression") >= share("PageRank") {
		t.Fatal("LR disk share should be below PageRank's")
	}
	for _, w := range []string{"PageRank", "ConnectedComponents", "KMeans", "GradientBoostedTrees", "SVD++"} {
		if share(w) <= 0 {
			t.Fatalf("%s share = %v, expected disk I/O under MEM+DISK", w, share(w))
		}
	}
}

// Fig. 5 shape: recomputation time grows over the iterations (longer
// lineages in later iterations).
func TestFig5RecomputeGrows(t *testing.T) {
	m, err := h(t).Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Rows) < 5 {
		t.Fatalf("expected per-iteration rows, got %d", len(m.Rows))
	}
	// Compare the average of the last third against the first third over
	// the iteration jobs (exclude the final collect job).
	n := len(m.Data) - 1
	third := n / 3
	early, late := 0.0, 0.0
	for i := 0; i < third; i++ {
		early += m.Data[i][0]
	}
	for i := n - third; i < n; i++ {
		late += m.Data[i][0]
	}
	if late <= early {
		t.Fatalf("recomputation should grow across iterations: early=%v late=%v", early, late)
	}
}

// Fig. 9 shape: Blaze has the lowest ACT on every workload, and the
// dependency-aware policies sit between Spark and Blaze.
func TestFig9BlazeWins(t *testing.T) {
	m, err := h(t).Fig9()
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range m.Rows {
		blazeACT, _ := m.Get(w, "Blaze")
		for j, c := range m.Cols {
			if c == "Blaze" {
				continue
			}
			if m.Data[i][j] < blazeACT {
				t.Errorf("%s: %s (%.3fs) beat Blaze (%.3fs)", w, c, m.Data[i][j], blazeACT)
			}
		}
	}
	// LRC and MRD improve on plain MEM+DISK Spark for the pressured
	// graph workloads.
	for _, w := range []string{"PageRank"} {
		md, _ := m.Get(w, "Spark (MEM+DISK)")
		lrc, _ := m.Get(w, "LRC")
		if lrc > md*1.05 {
			t.Errorf("%s: LRC (%.3f) should not lose clearly to MEM+DISK (%.3f)", w, lrc, md)
		}
	}
	// Spark+Alluxio pays extra (de)serialization and loses to MEM+DISK.
	for _, w := range m.Rows {
		md, _ := m.Get(w, "Spark (MEM+DISK)")
		al, _ := m.Get(w, "Spark+Alluxio")
		if al < md {
			t.Errorf("%s: Alluxio (%.3f) should not beat MEM+DISK (%.3f)", w, al, md)
		}
	}
}

// Fig. 10 shape: Blaze's disk-I/O-for-caching time is far below
// MEM+DISK Spark's on the disk-heavy workloads.
func TestFig10BlazeReducesDiskIO(t *testing.T) {
	m, err := h(t).Fig10()
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{"PageRank", "ConnectedComponents", "SVD++"} {
		md, ok1 := m.Get(w, "Spark (MEM+DISK) io")
		bl, ok2 := m.Get(w, "Blaze io")
		if !ok1 || !ok2 {
			t.Fatalf("missing columns for %s", w)
		}
		if bl > md*0.5 {
			t.Errorf("%s: Blaze disk I/O %.3fs should be well below MEM+DISK's %.3fs", w, bl, md)
		}
	}
}

// Fig. 11 shape: each Blaze component improves (or at least does not
// hurt) the previous configuration, with the full system the fastest.
func TestFig11AblationOrdering(t *testing.T) {
	m, err := h(t).Fig11()
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range m.Rows {
		md, _ := m.Get(w, "Spark (MEM+DISK)")
		bl, _ := m.Get(w, "Blaze")
		ca, _ := m.Get(w, "+CostAware")
		if bl > md {
			t.Errorf("%s: Blaze (%.3f) should beat MEM+DISK (%.3f)", w, bl, md)
		}
		if bl > ca*1.02 {
			t.Errorf("%s: Blaze (%.3f) should not lose to +CostAware (%.3f)", w, bl, ca)
		}
	}
}

// Fig. 12 shape: without disk support, Blaze still beats MEM_ONLY Spark
// on recomputation time, and incurs no LR evictions at all (§7.4).
func TestFig12MemoryOnly(t *testing.T) {
	m, err := h(t).Fig12()
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range m.Rows {
		sparkRC, _ := m.Get(w, "Spark (MEM) rc")
		blazeRC, _ := m.Get(w, "Blaze (MEM) rc")
		if blazeRC > sparkRC {
			t.Errorf("%s: Blaze(MEM) recompute %.3fs exceeds Spark(MEM) %.3fs", w, blazeRC, sparkRC)
		}
	}
	ev, _ := m.Get("LogisticRegression", "Blaze (MEM) ev")
	if ev != 0 {
		t.Errorf("LR under Blaze should incur no evictions, got %v", ev)
	}
}

// Fig. 13 shape: profiling never hurts, and helps at least one workload
// substantially.
func TestFig13ProfilingHelps(t *testing.T) {
	m, err := h(t).Fig13()
	if err != nil {
		t.Fatal(err)
	}
	best := 1.0
	for i, w := range m.Rows {
		norm := m.Data[i][1]
		if norm > 1.1 {
			t.Errorf("%s: profiling made Blaze worse (normalized %.3f)", w, norm)
		}
		if norm < best {
			best = norm
		}
	}
	if best > 0.95 {
		t.Errorf("profiling should substantially help at least one workload, best normalized ACT = %.3f", best)
	}
}

// Summary shape: the §7.2 headline claims — Blaze speeds up every
// workload over both Spark modes and eliminates most cache disk writes.
func TestSummaryHeadlines(t *testing.T) {
	m, err := h(t).Summary()
	if err != nil {
		t.Fatal(err)
	}
	totalRed, n := 0.0, 0
	for i, w := range m.Rows {
		vsMem, vsMD, red := m.Data[i][0], m.Data[i][1], m.Data[i][2]
		if vsMem < 1.0 {
			t.Errorf("%s: speedup vs MEM_ONLY = %.2fx < 1", w, vsMem)
		}
		if vsMD < 1.0 {
			t.Errorf("%s: speedup vs MEM+DISK = %.2fx < 1", w, vsMD)
		}
		totalRed += red
		n++
	}
	if avg := totalRed / float64(n); avg < 0.7 {
		t.Errorf("average disk reduction %.2f; the paper reports 95%%", avg)
	}
}

// The PR working set grows well beyond the input size over the
// iterations (§1: intermediate data exceeds 10x input); we assert the
// blind-cached volume exceeds the graph several times over.
func TestWorkingSetGrowth(t *testing.T) {
	hh := h(t)
	r, err := hh.run(blaze.SysSparkMemDisk, blaze.PR)
	if err != nil {
		t.Fatal(err)
	}
	// Evicted bytes accumulate across iterations; they must exceed the
	// per-executor memory several times over.
	if r.Metrics.TotalEvictedBytes() < 3*r.MemoryPerExecutor {
		t.Errorf("PR working set too small: evicted %d vs memory %d",
			r.Metrics.TotalEvictedBytes(), r.MemoryPerExecutor)
	}
}

// The extension experiments must run and keep their defining shapes.
func TestExtensionSweepEnvelope(t *testing.T) {
	m, err := h(t).Sweep()
	if err != nil {
		t.Fatal(err)
	}
	// Blaze tracks the lower envelope: at every budget it is within 10%
	// of the best system.
	for i, row := range m.Data {
		best := row[0]
		for _, v := range row {
			if v < best {
				best = v
			}
		}
		blazeACT := row[len(row)-1]
		if blazeACT > best*1.1 {
			t.Errorf("row %s: Blaze %.3fs is not near the envelope %.3fs", m.Rows[i], blazeACT, best)
		}
	}
}

func TestExtensionDiskCapBinds(t *testing.T) {
	m, err := h(t).DiskCap()
	if err != nil {
		t.Fatal(err)
	}
	unconstrained := m.Data[0][1]
	tightest := m.Data[len(m.Data)-1][1]
	if tightest >= unconstrained {
		t.Fatalf("disk constraint did not reduce the peak: %v -> %v", unconstrained, tightest)
	}
}

func TestExtensionWindowRuns(t *testing.T) {
	m, err := h(t).Window()
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range m.Data {
		// ACT and solver invocations must be positive; search nodes are
		// honest effort and legitimately zero when every solve is a
		// trivial knapsack or a cross-job memo hit.
		if row[0] <= 0 || row[1] <= 0 || row[2] < 0 {
			t.Fatalf("window row %s has zero metrics: %v", m.Rows[i], row)
		}
	}
}

func TestPolicyComparisonShape(t *testing.T) {
	m, err := h(t).Policies()
	if err != nil {
		t.Fatal(err)
	}
	lru, _ := m.Get("lru", "ACT")
	blazeACT, _ := m.Get("Blaze", "ACT")
	if blazeACT >= lru {
		t.Fatalf("Blaze (%.3f) should clearly beat LRU (%.3f)", blazeACT, lru)
	}
	// Conventional policies cluster near LRU (the §7.1 observation):
	// within ±40% of it.
	for _, p := range []string{"fifo", "lfu", "lfuda", "arc", "gdwheel", "tinylfu", "lecar"} {
		v, ok := m.Get(p, "ACT")
		if !ok {
			t.Fatalf("missing policy row %s", p)
		}
		if v < lru*0.6 || v > lru*1.4 {
			t.Errorf("policy %s ACT %.3f strays far from LRU %.3f", p, v, lru)
		}
	}
}

// Figures are deterministic: a second harness reproduces every number
// bit-for-bit.
func TestFiguresDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	a, err := New().Fig9()
	if err != nil {
		t.Fatal(err)
	}
	b, err := New().Fig9()
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Data {
		for j := range a.Data[i] {
			if a.Data[i][j] != b.Data[i][j] {
				t.Fatalf("fig9[%d][%d] differs across harnesses: %v vs %v", i, j, a.Data[i][j], b.Data[i][j])
			}
		}
	}
}

func TestRenderJSON(t *testing.T) {
	m := &Matrix{Title: "t", Unit: "u", Cols: []string{"c"}, Rows: []string{"r"}, Data: [][]float64{{1}}}
	js, err := m.RenderJSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"title": "t"`, `"cols"`, `"data"`} {
		if !strings.Contains(js, want) {
			t.Fatalf("JSON missing %q:\n%s", want, js)
		}
	}
}

func TestExtensionCoresNarrowsGap(t *testing.T) {
	m, err := h(t).CoresExperiment()
	if err != nil {
		t.Fatal(err)
	}
	// More cores speed everything up and Blaze stays fastest per row.
	for i, row := range m.Data {
		blazeACT := row[len(row)-1]
		for j, v := range row[:len(row)-1] {
			if v < blazeACT {
				t.Errorf("row %s: %s (%.3f) beat Blaze (%.3f)", m.Rows[i], m.Cols[j], v, blazeACT)
			}
		}
	}
	// The MEM_ONLY : MEM+DISK ratio narrows with cores (the deviation-1
	// evidence in EXPERIMENTS.md).
	ratio := func(row []float64) float64 { return row[0] / row[1] }
	if ratio(m.Data[len(m.Data)-1]) >= ratio(m.Data[0]) {
		t.Errorf("MEM:M+D ratio should narrow with cores: %v -> %v",
			ratio(m.Data[0]), ratio(m.Data[len(m.Data)-1]))
	}
}

func TestFigureDispatch(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	hh := h(t)
	for _, name := range AllFigures() {
		m, err := hh.Figure(name)
		if err != nil {
			t.Fatalf("figure %s: %v", name, err)
		}
		if len(m.Rows) == 0 || len(m.Cols) == 0 {
			t.Fatalf("figure %s is empty", name)
		}
		if out := m.Render(); len(out) == 0 {
			t.Fatalf("figure %s renders empty", name)
		}
	}
}
