package harness

import (
	"fmt"

	"blaze"
)

// Fig3 reproduces Figure 3: caching at dataset granularity causes
// different volumes of evicted data across executors, here on PageRank
// under annotation-based MEM+DISK Spark.
func (h *Harness) Fig3() (*Matrix, error) {
	r, err := h.run(blaze.SysSparkMemDisk, blaze.PR)
	if err != nil {
		return nil, err
	}
	m := &Matrix{
		Title:   "Figure 3: Evicted data per executor (PageRank, dataset-granularity caching)",
		Caption: "Coarse-grained caching evicts different volumes on different executors despite even task distribution.",
		Unit:    "KB evicted",
		Cols:    []string{"Evicted"},
	}
	for i := range r.Metrics.Executors {
		m.Rows = append(m.Rows, fmt.Sprintf("executor-%d", i+1))
		m.Data = append(m.Data, []float64{float64(r.Metrics.Executors[i].EvictedBytes) / 1024})
	}
	return m, nil
}

// Fig4 reproduces Figure 4: the accumulated task execution time of the
// six applications on MEM+DISK Spark, split into disk I/O for caching
// versus computation+shuffle.
func (h *Harness) Fig4() (*Matrix, error) {
	m := &Matrix{
		Title:   "Figure 4: Accumulated task execution time breakdown (MEM+DISK Spark)",
		Caption: "Disk I/O for recovering evicted cache data (incl. (de)serialization) vs computation+shuffle.",
		Unit:    "seconds (accumulated over tasks); share = diskIO/total",
		Cols:    []string{"DiskIO", "Comp+Shuffle", "DiskShare"},
	}
	for _, w := range blaze.AllWorkloads() {
		r, err := h.run(blaze.SysSparkMemDisk, w)
		if err != nil {
			return nil, err
		}
		b := r.Metrics.TotalBreakdown()
		share := 0.0
		if b.Total() > 0 {
			share = b.DiskIO.Seconds() / b.Total().Seconds()
		}
		m.Rows = append(m.Rows, workloadTitle(w))
		m.Data = append(m.Data, []float64{seconds(b.DiskIO), seconds(b.ComputeShuffle()), share})
	}
	return m, nil
}

// Fig5 reproduces Figure 5: total recomputation time per iteration of
// PageRank under recomputation-based MEM_ONLY Spark — recomputation
// chains lengthen over the iterations.
func (h *Harness) Fig5() (*Matrix, error) {
	r, err := h.run(blaze.SysSparkMem, blaze.PR)
	if err != nil {
		return nil, err
	}
	m := &Matrix{
		Title:   "Figure 5: Recomputation time per iteration (PageRank, MEM_ONLY Spark)",
		Caption: "Computations with longer lineages in later iterations incur more recomputation.",
		Unit:    "seconds (accumulated over tasks)",
		Cols:    []string{"Recompute"},
	}
	for i, d := range r.Metrics.RecomputeByJob {
		m.Rows = append(m.Rows, fmt.Sprintf("iteration-%d", i+1))
		m.Data = append(m.Data, []float64{seconds(d)})
	}
	return m, nil
}

// Fig9 reproduces Figure 9: end-to-end application completion time of
// the six systems on the six workloads.
func (h *Harness) Fig9() (*Matrix, error) {
	systems := blaze.Fig9Systems()
	m := &Matrix{
		Title:   "Figure 9: End-to-end application completion time",
		Caption: "Six caching systems across the six workloads (Blaze includes profiling overhead).",
		Unit:    "seconds (ACT)",
	}
	for _, s := range systems {
		m.Cols = append(m.Cols, systemTitle(s))
	}
	for _, w := range blaze.AllWorkloads() {
		row := make([]float64, len(systems))
		for j, s := range systems {
			r, err := h.run(s, w)
			if err != nil {
				return nil, err
			}
			row[j] = seconds(r.Metrics.ACT)
		}
		m.Rows = append(m.Rows, workloadTitle(w))
		m.Data = append(m.Data, row)
	}
	return m, nil
}

// Fig10 reproduces Figure 10: the accumulated task-time breakdown of
// every system on every workload (disk-I/O-for-caching bucket; for
// Spark+Alluxio this is the Alluxio I/O time).
func (h *Harness) Fig10() (*Matrix, error) {
	systems := blaze.Fig9Systems()
	m := &Matrix{
		Title:   "Figure 10: Accumulated task time breakdown (diskIO | comp+shuffle)",
		Caption: "Per system and workload: cache-recovery I/O time and computation+shuffle time.",
		Unit:    "seconds (accumulated)",
	}
	for _, s := range systems {
		m.Cols = append(m.Cols, systemTitle(s)+" io", systemTitle(s)+" cs")
	}
	for _, w := range blaze.AllWorkloads() {
		row := make([]float64, 0, 2*len(systems))
		for _, s := range systems {
			r, err := h.run(s, w)
			if err != nil {
				return nil, err
			}
			b := r.Metrics.TotalBreakdown()
			row = append(row, seconds(b.DiskIO), seconds(b.ComputeShuffle()))
		}
		m.Rows = append(m.Rows, workloadTitle(w))
		m.Data = append(m.Data, row)
	}
	return m, nil
}

// Fig11 reproduces Figure 11: the performance breakdown of Blaze's
// components — MEM+DISK Spark, +AutoCache, +CostAware, full Blaze.
func (h *Harness) Fig11() (*Matrix, error) {
	systems := []blaze.SystemID{blaze.SysSparkMemDisk, blaze.SysAutoCache, blaze.SysCostAware, blaze.SysBlaze}
	m := &Matrix{
		Title:   "Figure 11: Performance breakdown of Blaze components",
		Caption: "Each column adds one mechanism: automatic caching, cost-aware eviction, and the ILP decision layer.",
		Unit:    "seconds (ACT)",
	}
	for _, s := range systems {
		m.Cols = append(m.Cols, systemTitle(s))
	}
	for _, w := range blaze.AllWorkloads() {
		row := make([]float64, len(systems))
		for j, s := range systems {
			r, err := h.run(s, w)
			if err != nil {
				return nil, err
			}
			row[j] = seconds(r.Metrics.ACT)
		}
		m.Rows = append(m.Rows, workloadTitle(w))
		m.Data = append(m.Data, row)
	}
	return m, nil
}

// Fig12Workloads lists the §7.4 workloads.
func Fig12Workloads() []blaze.WorkloadID {
	return []blaze.WorkloadID{blaze.PR, blaze.CC, blaze.LR, blaze.SVDPP}
}

// Fig12 reproduces Figure 12: the number of evictions and the total
// recomputation time of the memory-only systems.
func (h *Harness) Fig12() (*Matrix, error) {
	systems := []blaze.SystemID{blaze.SysSparkMem, blaze.SysLRCMem, blaze.SysMRDMem, blaze.SysBlazeMem}
	m := &Matrix{
		Title:   "Figure 12: Evictions and recomputation time without disk support",
		Caption: "Memory-only variants: eviction counts (left) and accumulated recomputation time (right).",
		Unit:    "count | seconds",
	}
	for _, s := range systems {
		m.Cols = append(m.Cols, systemTitle(s)+" ev", systemTitle(s)+" rc")
	}
	for _, w := range Fig12Workloads() {
		row := make([]float64, 0, 2*len(systems))
		for _, s := range systems {
			r, err := h.run(s, w)
			if err != nil {
				return nil, err
			}
			row = append(row, float64(r.Metrics.Evictions), seconds(r.Metrics.TotalRecompute()))
		}
		m.Rows = append(m.Rows, workloadTitle(w))
		m.Data = append(m.Data, row)
	}
	return m, nil
}

// Fig13 reproduces Figure 13: Blaze with and without the dependency
// extraction (profiling) phase, ACT normalized to the with-profiling run.
func (h *Harness) Fig13() (*Matrix, error) {
	m := &Matrix{
		Title:   "Figure 13: Normalized ACT with and without dependency profiling",
		Caption: "Without profiling the lineage is built on the run, underestimating future references (profiling overhead is included in the with-profiling ACT).",
		Unit:    "normalized ACT (w/ profiling = 1.0)",
		Cols:    []string{"Blaze w/o Profiling", "Blaze w/ Profiling"},
	}
	for _, w := range Fig12Workloads() {
		with, err := h.run(blaze.SysBlaze, w)
		if err != nil {
			return nil, err
		}
		without, err := h.run(blaze.SysBlazeNoProfile, w)
		if err != nil {
			return nil, err
		}
		base := seconds(without.Metrics.ACT)
		norm := 1.0
		if base > 0 {
			norm = seconds(with.Metrics.ACT) / base
		}
		m.Rows = append(m.Rows, workloadTitle(w))
		m.Data = append(m.Data, []float64{1.0, norm})
	}
	return m, nil
}

// Summary reproduces the §7.2 headline numbers: Blaze's speedups over
// MEM_ONLY and MEM+DISK Spark and the reduction in cache data written to
// disk.
func (h *Harness) Summary() (*Matrix, error) {
	m := &Matrix{
		Title:   "Summary (§7.2): Blaze speedups and disk reduction",
		Caption: "Speedup = baseline ACT / Blaze ACT; disk reduction = 1 - BlazeDiskBytes/MEM+DISK DiskBytes.",
		Unit:    "x | x | fraction",
		Cols:    []string{"vs MEM", "vs MEM+DISK", "DiskReduction"},
	}
	for _, w := range blaze.AllWorkloads() {
		mem, err := h.run(blaze.SysSparkMem, w)
		if err != nil {
			return nil, err
		}
		md, err := h.run(blaze.SysSparkMemDisk, w)
		if err != nil {
			return nil, err
		}
		bl, err := h.run(blaze.SysBlaze, w)
		if err != nil {
			return nil, err
		}
		blACT := seconds(bl.Metrics.ACT)
		red := 0.0
		if md.Metrics.DiskBytesWritten > 0 {
			red = 1 - float64(bl.Metrics.DiskBytesWritten)/float64(md.Metrics.DiskBytesWritten)
		}
		m.Rows = append(m.Rows, workloadTitle(w))
		m.Data = append(m.Data, []float64{
			seconds(mem.Metrics.ACT) / blACT,
			seconds(md.Metrics.ACT) / blACT,
			red,
		})
	}
	return m, nil
}

// Policies reproduces the conventional-policy comparison the paper
// summarizes in §7.1: classic and learning-based eviction policies show
// marginal improvements, if any, over the default LRU, while the
// dependency-aware policies and Blaze clearly improve — which is why the
// paper plots only LRC, MRD and Blaze.
func (h *Harness) Policies() (*Matrix, error) {
	policies := []string{"lru", "fifo", "lfu", "lfuda", "arc", "gdwheel", "tinylfu", "lecar"}
	m := &Matrix{
		Title:   "Policy comparison (§7.1): conventional eviction policies on MEM+DISK Spark",
		Caption: "Conventional policies barely move ACT versus LRU; dependency-aware LRC/MRD and Blaze do.",
		Unit:    "seconds (ACT), PageRank",
		Cols:    []string{"ACT"},
	}
	for _, p := range policies {
		r, err := h.run(blaze.PolicySystem(p), blaze.PR)
		if err != nil {
			return nil, err
		}
		m.Rows = append(m.Rows, p)
		m.Data = append(m.Data, []float64{seconds(r.Metrics.ACT)})
	}
	for _, s := range []blaze.SystemID{blaze.SysLRC, blaze.SysMRD, blaze.SysBlaze} {
		r, err := h.run(s, blaze.PR)
		if err != nil {
			return nil, err
		}
		m.Rows = append(m.Rows, systemTitle(s))
		m.Data = append(m.Data, []float64{seconds(r.Metrics.ACT)})
	}
	return m, nil
}

// DiskCap is an extension experiment for the Eq. 6 disk-capacity
// constraint (§5.5 notes the ILP "can be simply extended" with it; the
// paper sets disk capacity abundant). Shrinking the disk budget forces
// the exact branch-and-bound solver to trade spills for recomputation.
func (h *Harness) DiskCap() (*Matrix, error) {
	caps := []struct {
		label string
		bytes int64
	}{
		{"unconstrained", 0},
		{"32KB/exec", 32 * 1024},
		{"8KB/exec", 8 * 1024},
		{"2KB/exec", 2 * 1024},
	}
	m := &Matrix{
		Title:   "Extension: Blaze under a disk capacity constraint (Eq. 6)",
		Caption: "Tight disk budgets push the decision layer from spilling toward recomputation (SVD++).",
		Unit:    "seconds | bytes",
		Cols:    []string{"ACT", "DiskPeak"},
	}
	for _, c := range caps {
		r, err := blaze.Run(blaze.RunConfig{
			System:       blaze.SysBlaze,
			Workload:     blaze.SVDPP,
			Executors:    h.Executors,
			Scale:        h.Scale,
			DiskCapacity: c.bytes,
		})
		if err != nil {
			return nil, err
		}
		m.Rows = append(m.Rows, c.label)
		m.Data = append(m.Data, []float64{seconds(r.Metrics.ACT), float64(r.Metrics.DiskPeakBytes)})
	}
	return m, nil
}

// Figure runs the experiment for a figure number ("3".."13") or
// "summary".
func (h *Harness) Figure(name string) (*Matrix, error) {
	switch name {
	case "3":
		return h.Fig3()
	case "4":
		return h.Fig4()
	case "5":
		return h.Fig5()
	case "9":
		return h.Fig9()
	case "10":
		return h.Fig10()
	case "11":
		return h.Fig11()
	case "12":
		return h.Fig12()
	case "13":
		return h.Fig13()
	case "summary":
		return h.Summary()
	case "policies":
		return h.Policies()
	case "diskcap":
		return h.DiskCap()
	case "sweep":
		return h.Sweep()
	case "window":
		return h.Window()
	case "cores":
		return h.CoresExperiment()
	default:
		return nil, fmt.Errorf("harness: unknown figure %q (have 3,4,5,9,10,11,12,13,summary,policies,diskcap,sweep,window,cores)", name)
	}
}

// AllFigures lists the reproducible figure names in order.
func AllFigures() []string {
	return []string{"3", "4", "5", "9", "10", "11", "12", "13", "summary", "policies", "diskcap", "sweep", "window", "cores"}
}
