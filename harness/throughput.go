package harness

// RunThroughputBench backs blazebench -throughput: the columnar hot-path benchmark. It pumps
// workload-shaped partitions through the per-task data plane — operator
// kernel, shuffle route, map-side combine — on the row loop and on the
// batched loop, at 1 and 8 worker goroutines, and reports records/s and
// allocations per record for each. It then re-runs the full engine row
// vs. vectorized and asserts virtual-time metrics and event logs are
// byte-equal at Parallelism 1 and 8, so the speedup numbers are backed
// by a bit-identity proof in the same report (BENCH_throughput.json).
//
// Shapes: PageRank partitions are 4096 vertices of out-degree 8 routed
// to 8 reducers; k-means windows are 4096 2-D points assigned to 8
// centroids, ingested raw the way streaming windows arrive (the row
// loop must box every point, the batched loop appends to a flat
// column).

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"
	"time"

	"blaze"
	"blaze/internal/dataflow"
	"blaze/internal/graphx"
	"blaze/internal/mllib"
)

const (
	tputPRVerts  = 4096
	tputPRDeg    = 8
	tputPRParts  = 8
	tputKMPoints = 4096
	tputKMDim    = 2
	tputKMK      = 8

	tputTargetSpeedup    = 5.0
	tputTargetAllocRatio = 10.0
)

type tputEntry struct {
	Workload             string  `json:"workload"`
	Parallelism          int     `json:"parallelism"`
	RecordsPerTask       int     `json:"records_per_task"`
	Tasks                int     `json:"tasks"`
	RowRecordsPerSec     float64 `json:"row_records_per_sec"`
	BatchRecordsPerSec   float64 `json:"batch_records_per_sec"`
	Speedup              float64 `json:"speedup"`
	RowAllocsPerRecord   float64 `json:"row_allocs_per_record"`
	BatchAllocsPerRecord float64 `json:"batch_allocs_per_record"`
	AllocRatio           float64 `json:"alloc_ratio"`
}

type tputIdentity struct {
	Workload     string `json:"workload"`
	Parallelism  int    `json:"parallelism"`
	MetricsEqual bool   `json:"metrics_equal"`
	EventsEqual  bool   `json:"events_equal"`
}

type tputReport struct {
	Cores            int            `json:"cores"`
	Entries          []tputEntry    `json:"entries"`
	Identity         []tputIdentity `json:"identity"`
	VecTasksExecuted int64          `json:"vec_tasks_executed"`
	TargetSpeedup    float64        `json:"target_speedup"`
	TargetAllocRatio float64        `json:"target_alloc_ratio"`
	TargetsMet       bool           `json:"targets_met"`
	BitIdentical     bool           `json:"bit_identical"`
	Note             string         `json:"note"`
}

// mergeRowsByKey is the row loop's map-side combine shape: map-indexed
// accumulation of boxed float64 values in first-seen key order.
func mergeRowsByKey(recs []dataflow.Record) []dataflow.Record {
	idx := make(map[int64]int, len(recs))
	var out []dataflow.Record
	for _, r := range recs {
		if at, ok := idx[r.Key]; ok {
			out[at].Value = out[at].Value.(float64) + r.Value.(float64)
		} else {
			idx[r.Key] = len(out)
			out = append(out, r)
		}
	}
	return out
}

// prRowTask runs one PageRank partition through the row data plane:
// contributions FlatMap, hash route to reducers, per-bucket combine.
func prRowTask(recs []dataflow.Record) int {
	contribs := graphx.BenchContribsRow(recs)
	buckets := make([][]dataflow.Record, tputPRParts)
	for _, r := range contribs {
		p := dataflow.HashPartition(r.Key, tputPRParts)
		buckets[p] = append(buckets[p], r)
	}
	n := 0
	for _, b := range buckets {
		n += len(mergeRowsByKey(b))
	}
	return n
}

// prBatchTask runs the same partition through the batched data plane.
func prBatchTask(in *dataflow.Batch, router dataflow.Router) int {
	contribs := graphx.BenchContribsBatch(in)
	buckets := make([]*dataflow.Batch, tputPRParts)
	for p := range buckets {
		buckets[p] = dataflow.NewBatch(contribs.Len() / tputPRParts)
	}
	for j := 0; j < contribs.Len(); j++ {
		buckets[router.Bucket(contribs.Keys[j])].AppendFromBatch(contribs, j)
	}
	contribs.Release()
	n := 0
	for _, b := range buckets {
		merged := dataflow.MergeBatchByKeyF64(b, func(a, c float64) float64 { return a + c })
		n += merged.Len()
		merged.Release()
		b.Release()
	}
	return n
}

// kmRowTask ingests one window of raw points as boxed records and runs
// the assignment closure, the way the row loop processes an arriving
// streaming window.
func kmRowTask(flat []float64, cs []dataflow.Record) int {
	recs := make([]dataflow.Record, tputKMPoints)
	for i := 0; i < tputKMPoints; i++ {
		v := make([]float64, tputKMDim)
		copy(v, flat[i*tputKMDim:(i+1)*tputKMDim])
		recs[i] = dataflow.Record{Key: int64(i), Value: mllib.Vector{V: v}}
	}
	return len(mllib.BenchStatsRow(recs, cs, tputKMK))
}

// kmBatchTask ingests the same window into a flat vector column and
// runs the assignment kernel.
func kmBatchTask(flat []float64, cb *dataflow.Batch) int {
	pb := dataflow.NewBatch(tputKMPoints)
	col := mllib.NewVectorColumn(tputKMPoints)
	pb.Col = col
	for i := 0; i < tputKMPoints; i++ {
		pb.Keys = append(pb.Keys, int64(i))
		col.Flat = append(col.Flat, flat[i*tputKMDim:(i+1)*tputKMDim]...)
		col.Off = append(col.Off, int32(len(col.Flat)))
	}
	out := mllib.BenchStatsBatch(pb, cb, tputKMK)
	n := out.Len()
	out.Release()
	pb.Release()
	return n
}

// measureTput runs `task` on `par` goroutines, `tasks` invocations in
// total, and returns records/s and allocations per record.
func measureTput(par, tasks, recordsPerTask int, task func()) (recPerSec, allocsPerRec float64) {
	for i := 0; i < 3; i++ {
		task() // warm pools and code paths
	}
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		n := tasks / par
		if w < tasks%par {
			n++
		}
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				task()
			}
		}(n)
	}
	wg.Wait()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	total := float64(tasks * recordsPerTask)
	return total / elapsed.Seconds(), float64(m1.Mallocs-m0.Mallocs) / total
}

// identityRun executes one full engine run and returns its result and
// event log.
func identityRun(wl blaze.WorkloadID, par int, vec bool) (*blaze.Result, *blaze.EventLog) {
	log := blaze.NewEventLog()
	res, err := blaze.Run(blaze.RunConfig{
		System:      blaze.SysBlaze,
		Workload:    wl,
		Executors:   4,
		Scale:       0.5,
		Parallelism: par,
		Vectorized:  vec,
		EventLog:    log,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "blazebench: %v\n", err)
		os.Exit(1)
	}
	return res, log
}

func eventsEqual(a, b *blaze.EventLog) bool {
	ae, be := a.Events(), b.Events()
	if len(ae) != len(be) {
		return false
	}
	for i := range ae {
		if ae[i] != be[i] {
			return false
		}
	}
	return true
}

func RunThroughputBench(path, cpuProfile, memProfile string) {
	if cpuProfile != "" {
		f, err := os.Create(cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "blazebench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "blazebench: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	rep := tputReport{
		Cores:            runtime.NumCPU(),
		TargetSpeedup:    tputTargetSpeedup,
		TargetAllocRatio: tputTargetAllocRatio,
		Note: "per-task data plane (kernel + route + combine) row vs. batch; " +
			"identity entries compare full engine runs row vs. vectorized",
	}

	// PageRank pipeline.
	prRecs, _ := graphx.BenchPRPartition(tputPRVerts, tputPRDeg)
	prBatch := dataflow.FromRecords(prRecs)
	router := dataflow.NewRouter(tputPRParts)
	// k-means window: raw coordinates plus broadcast centroids.
	kmFlat := make([]float64, tputKMPoints*tputKMDim)
	for i := range kmFlat {
		kmFlat[i] = float64((i*13)%97) / 97
	}
	_, kmCents, _, kmCentBatch := mllib.BenchKMeansPartition(1, tputKMDim, tputKMK)

	type pipeline struct {
		workload       string
		recordsPerTask int
		tasks          int
		row, batch     func()
	}
	pipes := []pipeline{
		{
			workload: "pr", recordsPerTask: tputPRVerts, tasks: 192,
			row:   func() { prRowTask(prRecs) },
			batch: func() { prBatchTask(prBatch, router) },
		},
		{
			workload: "kmeans", recordsPerTask: tputKMPoints, tasks: 768,
			row:   func() { kmRowTask(kmFlat, kmCents) },
			batch: func() { kmBatchTask(kmFlat, kmCentBatch) },
		},
	}

	rep.TargetsMet = true
	for _, p := range pipes {
		for _, par := range []int{1, 8} {
			rowRPS, rowAPR := measureTput(par, p.tasks, p.recordsPerTask, p.row)
			batchRPS, batchAPR := measureTput(par, p.tasks, p.recordsPerTask, p.batch)
			e := tputEntry{
				Workload:             p.workload,
				Parallelism:          par,
				RecordsPerTask:       p.recordsPerTask,
				Tasks:                p.tasks,
				RowRecordsPerSec:     rowRPS,
				BatchRecordsPerSec:   batchRPS,
				Speedup:              batchRPS / rowRPS,
				RowAllocsPerRecord:   rowAPR,
				BatchAllocsPerRecord: batchAPR,
				AllocRatio:           rowAPR / batchAPR,
			}
			if e.Speedup < tputTargetSpeedup || e.AllocRatio < tputTargetAllocRatio {
				rep.TargetsMet = false
			}
			rep.Entries = append(rep.Entries, e)
			fmt.Printf("%-8s P%d  row %10.0f rec/s %7.2f allocs/rec   batch %10.0f rec/s %7.4f allocs/rec   speedup %5.2fx  allocs %6.1fx\n",
				p.workload, par, rowRPS, rowAPR, batchRPS, batchAPR, e.Speedup, e.AllocRatio)
		}
	}

	// Bit-identity proof: full engine, row vs. vectorized, P1 and P8.
	vecBefore := blaze.VecTasksExecuted()
	rep.BitIdentical = true
	for _, wl := range []blaze.WorkloadID{blaze.PR, blaze.KMeans} {
		rowRes, rowLog := identityRun(wl, 1, false)
		for _, par := range []int{1, 8} {
			vecRes, vecLog := identityRun(wl, par, true)
			id := tputIdentity{
				Workload:     string(wl),
				Parallelism:  par,
				MetricsEqual: blaze.MetricsEqualDeterministic(rowRes.Metrics, vecRes.Metrics),
				EventsEqual:  eventsEqual(rowLog, vecLog),
			}
			if !id.MetricsEqual || !id.EventsEqual {
				rep.BitIdentical = false
			}
			rep.Identity = append(rep.Identity, id)
			fmt.Printf("%-8s P%d  metrics-equal %v  events-equal %v\n", wl, par, id.MetricsEqual, id.EventsEqual)
		}
	}
	rep.VecTasksExecuted = blaze.VecTasksExecuted() - vecBefore
	if rep.VecTasksExecuted == 0 {
		fmt.Fprintln(os.Stderr, "blazebench: vectorized runs executed zero columnar tasks; identity check is vacuous")
		os.Exit(1)
	}

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "blazebench: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "blazebench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("(targets: >=%.0fx records/s, >=%.0fx fewer allocs; met=%v; bit-identical=%v; %d columnar tasks; report written to %s)\n",
		tputTargetSpeedup, tputTargetAllocRatio, rep.TargetsMet, rep.BitIdentical, rep.VecTasksExecuted, path)

	if memProfile != "" {
		f, err := os.Create(memProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "blazebench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "blazebench: %v\n", err)
			os.Exit(1)
		}
	}
}
