// Package harness defines the evaluation experiments: one function per
// figure of the paper's evaluation (§7), each returning both a rendered
// text table and the raw numbers so tests can assert the qualitative
// shapes the paper reports.
package harness

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"time"

	"blaze"
)

// Matrix is a rectangular experiment result: rows × columns of float64
// values with labels, rendered as an aligned text table.
type Matrix struct {
	Title   string
	Caption string
	Unit    string
	Cols    []string
	Rows    []string
	Data    [][]float64
}

// Get returns the value at (row, col) labels; false if absent.
func (m *Matrix) Get(row, col string) (float64, bool) {
	ri, ci := -1, -1
	for i, r := range m.Rows {
		if r == row {
			ri = i
		}
	}
	for j, c := range m.Cols {
		if c == col {
			ci = j
		}
	}
	if ri < 0 || ci < 0 {
		return 0, false
	}
	return m.Data[ri][ci], true
}

// Render formats the matrix as an aligned text table.
func (m *Matrix) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", m.Title)
	if m.Caption != "" {
		fmt.Fprintf(&b, "%s\n", m.Caption)
	}
	width := 12
	for _, c := range m.Cols {
		if len(c)+2 > width {
			width = len(c) + 2
		}
	}
	labelW := 10
	for _, r := range m.Rows {
		if len(r)+2 > labelW {
			labelW = len(r) + 2
		}
	}
	fmt.Fprintf(&b, "%-*s", labelW, "")
	for _, c := range m.Cols {
		fmt.Fprintf(&b, "%*s", width, c)
	}
	fmt.Fprintf(&b, "  [%s]\n", m.Unit)
	for i, r := range m.Rows {
		fmt.Fprintf(&b, "%-*s", labelW, r)
		for j := range m.Cols {
			fmt.Fprintf(&b, "%*.3f", width, m.Data[i][j])
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// RenderJSON formats the matrix as a single JSON object for external
// tooling.
func (m *Matrix) RenderJSON() (string, error) {
	out, err := json.MarshalIndent(struct {
		Title   string      `json:"title"`
		Caption string      `json:"caption"`
		Unit    string      `json:"unit"`
		Cols    []string    `json:"cols"`
		Rows    []string    `json:"rows"`
		Data    [][]float64 `json:"data"`
	}{m.Title, m.Caption, m.Unit, m.Cols, m.Rows, m.Data}, "", "  ")
	if err != nil {
		return "", fmt.Errorf("harness: marshal: %w", err)
	}
	return string(out), nil
}

// Harness runs experiments with memoized application runs: the figure
// experiments share many (system, workload) runs.
type Harness struct {
	// Executors for every run (default 8).
	Executors int
	// Scale scales every workload's input (default 1).
	Scale float64

	mu    sync.Mutex
	cache map[string]*blaze.Result
}

// New creates a harness.
func New() *Harness {
	return &Harness{Executors: 8, Scale: 1.0, cache: make(map[string]*blaze.Result)}
}

// run executes (or returns the memoized) run of workload w under system s.
func (h *Harness) run(s blaze.SystemID, w blaze.WorkloadID) (*blaze.Result, error) {
	key := string(s) + "/" + string(w)
	h.mu.Lock()
	if r, ok := h.cache[key]; ok {
		h.mu.Unlock()
		return r, nil
	}
	h.mu.Unlock()
	r, err := blaze.Run(blaze.RunConfig{
		System:    s,
		Workload:  w,
		Executors: h.Executors,
		Scale:     h.Scale,
	})
	if err != nil {
		return nil, err
	}
	h.mu.Lock()
	h.cache[key] = r
	h.mu.Unlock()
	return r, nil
}

func seconds(d time.Duration) float64 { return d.Seconds() }

// workloadTitles maps ids to the paper's display names.
func workloadTitle(w blaze.WorkloadID) string {
	spec, err := blaze.Workload(w)
	if err != nil {
		return string(w)
	}
	return spec.Title
}

// systemTitle maps system ids to display names.
func systemTitle(s blaze.SystemID) string {
	switch s {
	case blaze.SysSparkMem:
		return "Spark (MEM)"
	case blaze.SysSparkMemDisk:
		return "Spark (MEM+DISK)"
	case blaze.SysSparkAlluxio:
		return "Spark+Alluxio"
	case blaze.SysLRC:
		return "LRC"
	case blaze.SysMRD:
		return "MRD"
	case blaze.SysLRCMem:
		return "LRC (MEM)"
	case blaze.SysMRDMem:
		return "MRD (MEM)"
	case blaze.SysAutoCache:
		return "+AutoCache"
	case blaze.SysCostAware:
		return "+CostAware"
	case blaze.SysBlaze:
		return "Blaze"
	case blaze.SysBlazeMem:
		return "Blaze (MEM)"
	case blaze.SysBlazeNoProfile:
		return "Blaze w/o Profiling"
	default:
		return string(s)
	}
}
