package harness

import (
	"fmt"

	"blaze"
)

// Sweep is an extension experiment: ACT as a function of the memory
// budget for the three headline systems on PageRank. It maps out the §4
// trade-off space — recomputation-based caching collapses under pressure,
// checkpoint-based caching pays disk I/O even with plenty of memory, and
// Blaze tracks the lower envelope.
func (h *Harness) Sweep() (*Matrix, error) {
	// Below ~25% the store cannot hold even a couple of partitions of a
	// dataset — a degenerate regime for every system — so the sweep
	// starts where caching decisions are meaningful.
	fractions := []float64{0.25, 0.4, 0.55, 0.7, 0.85}
	systems := []blaze.SystemID{blaze.SysSparkMem, blaze.SysSparkMemDisk, blaze.SysBlaze}
	m := &Matrix{
		Title:   "Extension: memory-budget sensitivity (PageRank)",
		Caption: "ACT versus memory-store capacity (fraction of the calibrated peak).",
		Unit:    "seconds (ACT)",
	}
	for _, s := range systems {
		m.Cols = append(m.Cols, systemTitle(s))
	}
	for _, f := range fractions {
		row := make([]float64, len(systems))
		for j, s := range systems {
			r, err := blaze.Run(blaze.RunConfig{
				System:         s,
				Workload:       blaze.PR,
				Executors:      h.Executors,
				Scale:          h.Scale,
				MemoryFraction: f,
			})
			if err != nil {
				return nil, err
			}
			row[j] = seconds(r.Metrics.ACT)
		}
		m.Rows = append(m.Rows, fmt.Sprintf("%.0f%%", f*100))
		m.Data = append(m.Data, row)
	}
	return m, nil
}

// Window is an extension ablation for the ILP optimization window: §5.5
// bounds the objective to "the current job and its successive job" to
// keep solves fast; this experiment varies how many successor jobs the
// window covers.
func (h *Harness) Window() (*Matrix, error) {
	m := &Matrix{
		Title:   "Extension: ILP optimization window (PageRank)",
		Caption: "Number of successor jobs the ILP objective covers (the paper uses 1).",
		Unit:    "seconds | solver invocations | search nodes",
		Cols:    []string{"ACT", "ILPSolves", "ILPNodes"},
	}
	for _, w := range []int{0, 1, 2, 4} {
		r, err := runBlazeWithWindow(h, w)
		if err != nil {
			return nil, err
		}
		m.Rows = append(m.Rows, fmt.Sprintf("window=%d", w))
		m.Data = append(m.Data, []float64{seconds(r.Metrics.ACT), float64(r.Metrics.ILPSolves), float64(r.Metrics.ILPNodes)})
	}
	return m, nil
}

// Cores is an extension experiment: per-executor core counts. The
// paper's executors run 4 cores each, so task latencies — including
// recomputation cascades — overlap; our default simulation uses 1 core,
// which over-penalizes recomputation-based MEM_ONLY Spark (the main
// deviation EXPERIMENTS.md documents). This experiment quantifies that:
// with more cores the MEM_ONLY : MEM+DISK gap narrows toward the paper's.
func (h *Harness) CoresExperiment() (*Matrix, error) {
	systems := []blaze.SystemID{blaze.SysSparkMem, blaze.SysSparkMemDisk, blaze.SysBlaze}
	m := &Matrix{
		Title:   "Extension: cores per executor (PageRank)",
		Caption: "Recomputation cascades overlap across cores, narrowing MEM_ONLY's penalty (the paper's executors run 4 cores).",
		Unit:    "seconds (ACT)",
	}
	for _, s := range systems {
		m.Cols = append(m.Cols, systemTitle(s))
	}
	for _, cores := range []int{1, 2, 4} {
		row := make([]float64, len(systems))
		for j, s := range systems {
			r, err := blaze.Run(blaze.RunConfig{
				System:    s,
				Workload:  blaze.PR,
				Executors: h.Executors,
				Scale:     h.Scale,
				Cores:     cores,
			})
			if err != nil {
				return nil, err
			}
			row[j] = seconds(r.Metrics.ACT)
		}
		m.Rows = append(m.Rows, fmt.Sprintf("%d-core", cores))
		m.Data = append(m.Data, row)
	}
	return m, nil
}

// runBlazeWithWindow runs Blaze on PR with a custom ILP window
// (window=0 means the current job only).
func runBlazeWithWindow(h *Harness, window int) (*blaze.Result, error) {
	w := window
	if w == 0 {
		w = blaze.ILPWindowCurrentJobOnly
	}
	return blaze.Run(blaze.RunConfig{
		System:         blaze.SysBlaze,
		Workload:       blaze.PR,
		Executors:      h.Executors,
		Scale:          h.Scale,
		MemoryFraction: 0.35,
		ILPWindow:      w,
	})
}
